// Unit tests for src/util: status/result, rng, strings, csv, hashing.

#include <gtest/gtest.h>

#include <set>

#include "util/csv.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/str.h"
#include "util/timer.h"

namespace cobra::util {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
}

// The transient-vs-permanent contract the serve-layer retry loops depend
// on: exactly kUnavailable is retryable; corruption, verifier rejection,
// and plain I/O errors are not.
TEST(StatusTest, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(IsRetryable(Status::Unavailable("torn write")));
  EXPECT_TRUE(IsRetryable(StatusCode::kUnavailable));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::DataLoss("checksum mismatch")));
  EXPECT_FALSE(IsRetryable(Status::DeadlineExceeded("too slow")));
  EXPECT_FALSE(IsRetryable(Status::IoError("disk on fire")));
  EXPECT_FALSE(IsRetryable(Status::InvalidArgument("bad request")));
  EXPECT_FALSE(IsRetryable(Status::Internal("bug")));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "payload");
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(13), 13u);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRoughlyUniform) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng rng(19);
  Rng f1 = rng.Fork(1);
  Rng f2 = rng.Fork(2);
  EXPECT_NE(f1.NextU64(), f2.NextU64());
}

// ---------- Strings ----------

TEST(StrTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("x", ','), (std::vector<std::string>{"x"}));
  EXPECT_EQ(Split("a,b,", ','), (std::vector<std::string>{"a", "b", ""}));
}

TEST(StrTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StrTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StrTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StrTest, CaseConversions) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("aBc1"), "ABC1");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StrTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StrTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64("-17").ValueOrDie(), -17);
  EXPECT_EQ(ParseInt64("  8 ").ValueOrDie(), 8);
  EXPECT_FALSE(ParseInt64("4x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("1e3").ok());
}

TEST(StrTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").ValueOrDie(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").ValueOrDie(), 1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("-0.25").ValueOrDie(), -0.25);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(StrTest, FormatDoubleCompact) {
  EXPECT_EQ(FormatDouble(240.0), "240");
  EXPECT_EQ(FormatDouble(208.8), "208.8");
  EXPECT_EQ(FormatDouble(100.65), "100.65");
  EXPECT_EQ(FormatDouble(114.45), "114.45");
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(-2.5), "-2.5");
}

TEST(StrTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

// ---------- CSV ----------

TEST(CsvTest, ParsesSimpleDocument) {
  auto doc = ParseCsv("a,b\n1,2\n3,4\n").ValueOrDie();
  EXPECT_EQ(doc.header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"3", "4"}));
}

TEST(CsvTest, HandlesQuotedFields) {
  auto doc = ParseCsv("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n").ValueOrDie();
  EXPECT_EQ(doc.rows[0][0], "x,y");
  EXPECT_EQ(doc.rows[0][1], "he said \"hi\"");
}

TEST(CsvTest, HandlesCrLf) {
  auto doc = ParseCsv("a,b\r\n1,2\r\n").ValueOrDie();
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n").ok());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(CsvTest, RoundTrips) {
  CsvDocument doc;
  doc.header = {"name", "note"};
  doc.rows = {{"x", "plain"}, {"y", "with,comma"}, {"z", "with\"quote"}};
  auto parsed = ParseCsv(WriteCsv(doc)).ValueOrDie();
  EXPECT_EQ(parsed.header, doc.header);
  EXPECT_EQ(parsed.rows, doc.rows);
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/cobra_csv_test.csv";
  ASSERT_TRUE(WriteFile(path, "a,b\n1,2\n").ok());
  EXPECT_EQ(ReadFile(path).ValueOrDie(), "a,b\n1,2\n");
  EXPECT_FALSE(ReadFile(path + ".does_not_exist").ok());
}

// ---------- Hashing / Timer ----------

TEST(HashTest, Mix64Avalanches) {
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(Mix64(1), 1u);
  // Note: the Murmur3 finalizer fixes 0 (Mix64(0) == 0); callers xor a
  // nonzero constant before mixing where that matters.
  EXPECT_EQ(Mix64(0), 0u);
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(HashTest, HashBytes) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(t.ElapsedNanos(), 0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace cobra::util
