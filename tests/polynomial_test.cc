// Unit + property tests for prov::Polynomial: canonical form, ring laws,
// substitution/merging, parsing and printing.

#include "prov/polynomial.h"

#include <gtest/gtest.h>

#include "prov/parser.h"
#include "prov/valuation.h"
#include "prov/variable.h"
#include "util/rng.h"

namespace cobra::prov {
namespace {

class PolynomialTest : public ::testing::Test {
 protected:
  Polynomial Parse(std::string_view text) {
    return ParsePolynomial(text, &pool_).ValueOrDie();
  }

  VarPool pool_;
  VarId x_ = pool_.Intern("x");
  VarId y_ = pool_.Intern("y");
  VarId z_ = pool_.Intern("z");
};

TEST_F(PolynomialTest, DefaultIsZero) {
  Polynomial p;
  EXPECT_TRUE(p.IsZero());
  EXPECT_EQ(p.NumMonomials(), 0u);
  EXPECT_EQ(p.ToString(pool_), "0");
}

TEST_F(PolynomialTest, FromTermsMergesDuplicates) {
  Polynomial p = Polynomial::FromTerms(
      {{Monomial::Of(x_), 2.0}, {Monomial::Of(x_), 3.0}});
  EXPECT_EQ(p.NumMonomials(), 1u);
  EXPECT_DOUBLE_EQ(p.CoefficientOf(Monomial::Of(x_)), 5.0);
}

TEST_F(PolynomialTest, FromTermsDropsZeroCoefficients) {
  Polynomial p = Polynomial::FromTerms(
      {{Monomial::Of(x_), 2.0}, {Monomial::Of(x_), -2.0},
       {Monomial::Of(y_), 1.0}});
  EXPECT_EQ(p.NumMonomials(), 1u);
  EXPECT_DOUBLE_EQ(p.CoefficientOf(Monomial::Of(y_)), 1.0);
}

TEST_F(PolynomialTest, ConstantZeroIsZeroPolynomial) {
  EXPECT_TRUE(Polynomial::Constant(0.0).IsZero());
  EXPECT_EQ(Polynomial::Constant(3.0).NumMonomials(), 1u);
}

TEST_F(PolynomialTest, PlusMergesAcrossOperands) {
  Polynomial p = Parse("2 * x + y").Plus(Parse("3 * x - y + 1"));
  EXPECT_DOUBLE_EQ(p.CoefficientOf(Monomial::Of(x_)), 5.0);
  EXPECT_DOUBLE_EQ(p.CoefficientOf(Monomial::Of(y_)), 0.0);
  EXPECT_DOUBLE_EQ(p.CoefficientOf(Monomial()), 1.0);
  EXPECT_EQ(p.NumMonomials(), 2u);
}

TEST_F(PolynomialTest, TimesDistributes) {
  Polynomial p = Parse("x + y").TimesPoly(Parse("x - y"));
  EXPECT_EQ(p, Parse("x^2 - y^2"));
}

TEST_F(PolynomialTest, ScaleMultipliesCoefficients) {
  EXPECT_EQ(Parse("2 * x + 4").Scale(0.5), Parse("x + 2"));
  EXPECT_TRUE(Parse("x + y").Scale(0.0).IsZero());
}

TEST_F(PolynomialTest, TimesMonomialShifts) {
  Polynomial p = Parse("x + 1").TimesMonomial(Monomial::Of(y_));
  EXPECT_EQ(p, Parse("x * y + y"));
}

TEST_F(PolynomialTest, VariablesCollectsDistinct) {
  Polynomial p = Parse("x * y + x + 3");
  std::vector<VarId> vars = p.Variables();
  EXPECT_EQ(vars, (std::vector<VarId>{x_, y_}));
}

TEST_F(PolynomialTest, DegreeIsMaxTotalDegree) {
  EXPECT_EQ(Parse("x * y^2 + x").Degree(), 3u);
  EXPECT_EQ(Parse("5").Degree(), 0u);
  EXPECT_EQ(Polynomial().Degree(), 0u);
}

TEST_F(PolynomialTest, EvalMatchesHandComputation) {
  Valuation v(pool_);
  v.Set(x_, 2.0);
  v.Set(y_, 3.0);
  EXPECT_DOUBLE_EQ(Parse("2 * x * y + x - 4").Eval(v), 12.0 + 2.0 - 4.0);
}

TEST_F(PolynomialTest, SubstituteVarsMergesCollisions) {
  // x -> z, y -> z: x + y collapses to 2z; x*y becomes z^2.
  std::vector<VarId> mapping{z_, z_, z_};
  EXPECT_EQ(Parse("x + y").SubstituteVars(mapping), Parse("2 * z"));
  EXPECT_EQ(Parse("x * y").SubstituteVars(mapping), Parse("z^2"));
  EXPECT_EQ(Parse("3 * x + 2 * y + z").SubstituteVars(mapping),
            Parse("6 * z"));
}

TEST_F(PolynomialTest, SubstituteIdentityIsNoop) {
  std::vector<VarId> identity{x_, y_, z_};
  Polynomial p = Parse("2 * x * y + z^3 - 1");
  EXPECT_EQ(p.SubstituteVars(identity), p);
}

TEST_F(PolynomialTest, ToStringCanonicalForm) {
  EXPECT_EQ(Parse("y + x").ToString(pool_),
            Parse("x + y").ToString(pool_));
  EXPECT_EQ(Parse("208.8 * x").ToString(pool_), "208.8 * x");
  EXPECT_EQ(Parse("1 * x").ToString(pool_), "x");
  EXPECT_EQ(Parse("x - y").ToString(pool_), "x - y");
  EXPECT_EQ(Parse("0 * x").ToString(pool_), "0");
}

TEST_F(PolynomialTest, ParserHandlesSigns) {
  EXPECT_EQ(Parse("-x + 2"), Parse("2 - x"));
  EXPECT_DOUBLE_EQ(Parse("-3").CoefficientOf(Monomial()), -3.0);
}

TEST_F(PolynomialTest, ParserHandlesExponents) {
  Polynomial p = Parse("x^2 * y");
  EXPECT_EQ(p.Degree(), 3u);
  EXPECT_FALSE(ParsePolynomial("x^0.5", &pool_).ok());
  EXPECT_FALSE(ParsePolynomial("x^", &pool_).ok());
}

TEST_F(PolynomialTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParsePolynomial("x +", &pool_).ok());
  EXPECT_FALSE(ParsePolynomial("* x", &pool_).ok());
  EXPECT_FALSE(ParsePolynomial("x y", &pool_).ok());
  EXPECT_FALSE(ParsePolynomial("(x)", &pool_).ok());
  EXPECT_FALSE(ParsePolynomial("", &pool_).ok());
}

TEST_F(PolynomialTest, ParsePolySetLabelsAndComments) {
  auto set = ParsePolySet("# comment\nP1 = x + y\n\nP2 = 2 * x\n", &pool_)
                 .ValueOrDie();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.label(0), "P1");
  EXPECT_EQ(set.poly(1), Parse("2 * x"));
  EXPECT_EQ(set.FindLabel("P2"), 1u);
  EXPECT_EQ(set.FindLabel("nope"), PolySet::npos);
}

TEST_F(PolynomialTest, ParsePolySetRejectsBadLines) {
  EXPECT_FALSE(ParsePolySet("no equals sign", &pool_).ok());
  EXPECT_FALSE(ParsePolySet(" = x", &pool_).ok());
  EXPECT_FALSE(ParsePolySet("P1 = x +", &pool_).ok());
}

TEST_F(PolynomialTest, PrintParseRoundTrip) {
  util::Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    std::vector<Term> terms;
    std::size_t n = 1 + rng.NextBelow(6);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<VarPower> factors;
      std::size_t k = rng.NextBelow(3);
      for (std::size_t j = 0; j < k; ++j) {
        factors.push_back(
            {static_cast<VarId>(rng.NextBelow(3)),
             static_cast<std::uint32_t>(1 + rng.NextBelow(3))});
      }
      // Coefficients on a .25 grid so printing is exact.
      double coeff = static_cast<double>(rng.NextInRange(-20, 20)) * 0.25;
      terms.push_back({Monomial::FromFactors(std::move(factors)), coeff});
    }
    Polynomial p = Polynomial::FromTerms(std::move(terms));
    Polynomial reparsed = Parse(p.ToString(pool_));
    EXPECT_EQ(p, reparsed) << p.ToString(pool_);
  }
}

TEST_F(PolynomialTest, BuilderMatchesFromTerms) {
  PolynomialBuilder builder;
  builder.AddTerm(Monomial::Of(x_), 2.0);
  builder.AddTerm(Monomial::Of(x_), 3.0);
  builder.AddTerm(Monomial::Of(y_), -1.0);
  builder.AddPolynomial(Parse("y + 4"), 2.0);
  Polynomial p = builder.Build();
  EXPECT_EQ(p, Parse("5 * x + y + 8"));
  // Build() resets.
  EXPECT_TRUE(builder.Build().IsZero());
}

TEST_F(PolynomialTest, AlmostEqualsTolerates) {
  Polynomial a = Parse("x + 2");
  Polynomial b = Polynomial::FromTerms(
      {{Monomial::Of(x_), 1.0 + 1e-12}, {Monomial(), 2.0}});
  EXPECT_TRUE(a.AlmostEquals(b, 1e-9));
  EXPECT_FALSE(a.AlmostEquals(Parse("x + 2.1"), 1e-9));
  EXPECT_FALSE(a.AlmostEquals(Parse("x"), 1e-9));
}

// ---- Ring laws as randomized property tests ----

class PolynomialRingLaws : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Polynomial Random(util::Rng* rng) {
    std::vector<Term> terms;
    std::size_t n = rng->NextBelow(5);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<VarPower> factors;
      std::size_t k = rng->NextBelow(3);
      for (std::size_t j = 0; j < k; ++j) {
        factors.push_back({static_cast<VarId>(rng->NextBelow(4)),
                           static_cast<std::uint32_t>(1 + rng->NextBelow(2))});
      }
      terms.push_back({Monomial::FromFactors(std::move(factors)),
                       static_cast<double>(rng->NextInRange(-8, 8))});
    }
    return Polynomial::FromTerms(std::move(terms));
  }
};

TEST_P(PolynomialRingLaws, CommutativityAssociativityDistributivity) {
  util::Rng rng(GetParam());
  Polynomial a = Random(&rng), b = Random(&rng), c = Random(&rng);
  // + commutative/associative
  EXPECT_EQ(a.Plus(b), b.Plus(a));
  EXPECT_EQ(a.Plus(b).Plus(c), a.Plus(b.Plus(c)));
  // * commutative/associative
  EXPECT_EQ(a.TimesPoly(b), b.TimesPoly(a));
  EXPECT_EQ(a.TimesPoly(b).TimesPoly(c), a.TimesPoly(b.TimesPoly(c)));
  // identities
  EXPECT_EQ(a.Plus(Polynomial()), a);
  EXPECT_EQ(a.TimesPoly(Polynomial::Constant(1.0)), a);
  EXPECT_TRUE(a.TimesPoly(Polynomial()).IsZero());
  // distributivity
  EXPECT_EQ(a.TimesPoly(b.Plus(c)), a.TimesPoly(b).Plus(a.TimesPoly(c)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolynomialRingLaws,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace cobra::prov
