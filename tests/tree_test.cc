// Tests for abstraction trees and cuts: construction, parsing, validation,
// traversals, cut semantics and enumeration.

#include "core/tree.h"

#include <gtest/gtest.h>

#include "core/cut.h"
#include "data/example_db.h"
#include "prov/variable.h"

namespace cobra::core {
namespace {

class TreeTest : public ::testing::Test {
 protected:
  /// Builds the Figure 2 tree programmatically.
  AbstractionTree BuildFigure2() {
    AbstractionTree t;
    NodeId root = t.AddRoot("Plans");
    NodeId business = t.AddChild(root, "Business");
    NodeId sb = t.AddChild(business, "SB");
    t.AddLeaf(sb, "b1", &pool_);
    t.AddLeaf(sb, "b2", &pool_);
    t.AddLeaf(business, "e", &pool_);
    NodeId special = t.AddChild(root, "Special");
    NodeId f = t.AddChild(special, "F");
    t.AddLeaf(f, "f1", &pool_);
    t.AddLeaf(f, "f2", &pool_);
    NodeId y = t.AddChild(special, "Y");
    t.AddLeaf(y, "y1", &pool_);
    t.AddLeaf(y, "y2", &pool_);
    t.AddLeaf(y, "y3", &pool_);
    t.AddLeaf(special, "v", &pool_);
    NodeId standard = t.AddChild(root, "Standard");
    t.AddLeaf(standard, "p1", &pool_);
    t.AddLeaf(standard, "p2", &pool_);
    return t;
  }

  prov::VarPool pool_;
};

TEST_F(TreeTest, Figure2Structure) {
  AbstractionTree t = BuildFigure2();
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.size(), 18u);  // 11 leaves + 7 inner (Plans..Standard)
  EXPECT_EQ(t.Leaves().size(), 11u);
  EXPECT_EQ(t.MaxDepth(), 3u);
  EXPECT_EQ(t.node(t.root()).name, "Plans");
}

TEST_F(TreeTest, ParseMatchesProgrammaticTree) {
  AbstractionTree built = BuildFigure2();
  prov::VarPool pool2;
  AbstractionTree parsed =
      ParseTree(data::kFigure2TreeText, &pool2).ValueOrDie();
  EXPECT_EQ(parsed.size(), built.size());
  EXPECT_EQ(parsed.Leaves().size(), built.Leaves().size());
  EXPECT_EQ(parsed.CountCuts(), built.CountCuts());
  EXPECT_EQ(parsed.node(parsed.root()).name, "Plans");
  EXPECT_NE(parsed.FindByName("SB"), kNoNode);
  EXPECT_NE(parsed.FindByName("y2"), kNoNode);
}

TEST_F(TreeTest, ParseRejectsBadInput) {
  prov::VarPool pool;
  EXPECT_FALSE(ParseTree("", &pool).ok());
  EXPECT_FALSE(ParseTree("  indented_root\n", &pool).ok());
  EXPECT_FALSE(ParseTree("a\nb\n", &pool).ok());      // two roots
  EXPECT_FALSE(ParseTree("a\n  b\n  b\n", &pool).ok());  // duplicate names
  EXPECT_FALSE(ParseTree("a\n\tb\n", &pool).ok());    // tabs
}

TEST_F(TreeTest, ParseIgnoresCommentsAndBlankLines) {
  prov::VarPool pool;
  AbstractionTree t =
      ParseTree("# header\nroot\n\n  a  # trailing\n  b\n", &pool)
          .ValueOrDie();
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.Leaves().size(), 2u);
}

TEST_F(TreeTest, SingleLeafRootIsInvalid) {
  // A root with no children is a leaf without a variable -> invalid... but
  // the parser interns it as a variable, making a 1-node tree valid.
  prov::VarPool pool;
  AbstractionTree t = ParseTree("x\n", &pool).ValueOrDie();
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.node(t.root()).IsLeaf());
}

TEST_F(TreeTest, DepthAndLeavesUnder) {
  AbstractionTree t = BuildFigure2();
  NodeId sb = t.FindByName("SB");
  NodeId special = t.FindByName("Special");
  EXPECT_EQ(t.Depth(t.root()), 0u);
  EXPECT_EQ(t.Depth(sb), 2u);
  EXPECT_EQ(t.LeavesUnder(sb).size(), 2u);
  EXPECT_EQ(t.LeavesUnder(special).size(), 6u);
  EXPECT_EQ(t.LeavesUnder(t.root()).size(), 11u);
}

TEST_F(TreeTest, PostOrderVisitsChildrenFirst) {
  AbstractionTree t = BuildFigure2();
  std::vector<NodeId> order = t.PostOrder();
  ASSERT_EQ(order.size(), t.size());
  std::vector<std::size_t> position(t.size());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (NodeId v = 0; v < t.size(); ++v) {
    for (NodeId c : t.node(v).children) {
      EXPECT_LT(position[c], position[v]);
    }
  }
  EXPECT_EQ(order.back(), t.root());
}

TEST_F(TreeTest, FindLeafByVar) {
  AbstractionTree t = BuildFigure2();
  prov::VarId b1 = pool_.Find("b1");
  NodeId leaf = t.FindLeafByVar(b1);
  ASSERT_NE(leaf, kNoNode);
  EXPECT_EQ(t.node(leaf).name, "b1");
  EXPECT_EQ(t.FindLeafByVar(9999), kNoNode);
}

TEST_F(TreeTest, CountCutsFigure2Is31) {
  // C(SB)=2, C(Business)=3, C(F)=2, C(Y)=2, C(Special)=5, C(Standard)=2,
  // C(Plans)=1+3*5*2=31.
  EXPECT_EQ(BuildFigure2().CountCuts(), 31u);
}

TEST_F(TreeTest, ValidateCatchesDuplicateVariables) {
  AbstractionTree t;
  NodeId root = t.AddRoot("r");
  t.AddLeaf(root, "x", &pool_);
  NodeId inner = t.AddChild(root, "g");
  t.AddLeaf(inner, "x2", &pool_);
  EXPECT_TRUE(t.Validate().ok());
  // Force a duplicate var.
  AbstractionTree bad;
  NodeId broot = bad.AddRoot("r");
  bad.AddLeaf(broot, "x", &pool_);
  bad.AddLeaf(broot, "x", &pool_);  // same name -> same var AND same name
  EXPECT_FALSE(bad.Validate().ok());
}

// ---------- Cuts ----------

class CutTest : public TreeTest {};

TEST_F(CutTest, LeavesAndRootCutsAreValid) {
  AbstractionTree t = BuildFigure2();
  EXPECT_TRUE(Cut::Leaves(t).Validate(t).ok());
  EXPECT_TRUE(Cut::Root(t).Validate(t).ok());
  EXPECT_EQ(Cut::Leaves(t).size(), 11u);
  EXPECT_EQ(Cut::Root(t).size(), 1u);
}

TEST_F(CutTest, PaperCutsS1ToS5AreValid) {
  AbstractionTree t = BuildFigure2();
  // Example 4 of the paper.
  const std::vector<std::vector<std::string>> cuts = {
      {"Business", "Special", "Standard"},
      {"SB", "e", "f1", "f2", "Y", "v", "Standard"},
      {"b1", "b2", "e", "Special", "Standard"},
      {"SB", "e", "F", "Y", "v", "p1", "p2"},
      {"Plans"}};
  for (const auto& names : cuts) {
    Cut cut = Cut::FromNames(t, names).ValueOrDie();
    EXPECT_TRUE(cut.Validate(t).ok());
    EXPECT_EQ(cut.size(), names.size());
  }
}

TEST_F(CutTest, InvalidCutsRejected) {
  AbstractionTree t = BuildFigure2();
  // Missing coverage of Standard leaves.
  Cut partial = Cut::FromNames(t, {"Business", "Special"}).status().ok()
                    ? Cut()
                    : Cut();
  EXPECT_FALSE(Cut::FromNames(t, {"Business", "Special"}).ok());
  // Double coverage: a node and its descendant.
  EXPECT_FALSE(
      Cut::FromNames(t, {"Business", "SB", "Special", "Standard"}).ok());
  // Unknown name.
  EXPECT_FALSE(Cut::FromNames(t, {"NoSuchNode"}).ok());
}

TEST_F(CutTest, AtDepthIncludesShallowLeaves) {
  AbstractionTree t = BuildFigure2();
  // Depth 2: SB, e(leaf at depth 2), F, Y, v(leaf at depth 2), p1, p2.
  Cut d2 = Cut::AtDepth(t, 2);
  EXPECT_TRUE(d2.Validate(t).ok());
  EXPECT_EQ(d2.size(), 7u);
  // Depth 1: the three top groups.
  EXPECT_EQ(Cut::AtDepth(t, 1).size(), 3u);
  // Depth >= max: all leaves.
  EXPECT_EQ(Cut::AtDepth(t, 3).size(), 11u);
}

TEST_F(CutTest, CoveringNodeMapsLeaves) {
  AbstractionTree t = BuildFigure2();
  Cut s1 = Cut::FromNames(t, {"Business", "Special", "Standard"}).ValueOrDie();
  std::vector<NodeId> covering = s1.CoveringNode(t);
  NodeId business = t.FindByName("Business");
  for (const char* leaf_name : {"b1", "b2", "e"}) {
    NodeId leaf = t.FindByName(leaf_name);
    EXPECT_EQ(covering[leaf], business);
  }
}

TEST_F(CutTest, EnumerateCutsFindsAll31) {
  AbstractionTree t = BuildFigure2();
  std::vector<Cut> cuts = EnumerateCuts(t).ValueOrDie();
  EXPECT_EQ(cuts.size(), 31u);
  for (const Cut& cut : cuts) {
    EXPECT_TRUE(cut.Validate(t).ok());
  }
  // All distinct.
  for (std::size_t i = 0; i < cuts.size(); ++i) {
    for (std::size_t j = i + 1; j < cuts.size(); ++j) {
      EXPECT_FALSE(cuts[i] == cuts[j]);
    }
  }
}

TEST_F(CutTest, EnumerateRespectsLimit) {
  AbstractionTree t = BuildFigure2();
  EXPECT_FALSE(EnumerateCuts(t, 10).ok());
}

TEST_F(CutTest, ToStringListsNames) {
  AbstractionTree t = BuildFigure2();
  Cut s5 = Cut::FromNames(t, {"Plans"}).ValueOrDie();
  EXPECT_EQ(s5.ToString(t), "{Plans}");
}

}  // namespace
}  // namespace cobra::core
