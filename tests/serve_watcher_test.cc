// Tests for the snapshot watcher (serve/snapshot_watcher.h): candidate
// selection must follow the directory convention, transient load failures
// must retry with capped backoff and never quarantine, permanent failures
// must quarantine exactly once with the verifier's findings surfaced, and
// PollOnce must swap only on fully verified snapshots.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/compiled_session.h"
#include "core/io.h"
#include "core/session.h"
#include "data/example_db.h"
#include "serve/snapshot_watcher.h"
#include "util/csv.h"
#include "util/status.h"

namespace cobra::serve {
namespace {

using core::CompiledSession;
using core::Session;

std::shared_ptr<const CompiledSession> ExampleSnapshot(Session* session) {
  session->LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
  session->SetTreeText(data::kFigure2TreeText).CheckOK();
  session->SetBound(6);
  session->Compress().ValueOrDie();
  return session->Snapshot().ValueOrDie();
}

/// A fresh empty directory under the test tmpdir (leftovers from earlier
/// runs are removed — the directory convention makes stale files look like
/// candidates).
std::string MakeDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(QuarantineTest, RenamesToRejected) {
  const std::string dir = MakeDir("quarantine_rename");
  const std::string path = dir + "/v01.snap";
  ASSERT_TRUE(util::WriteFile(path, "junk").ok());
  ASSERT_TRUE(QuarantineArtifact(path).ok());
  EXPECT_FALSE(util::ReadFile(path).ok());
  EXPECT_TRUE(util::ReadFile(path + ".rejected").ok());
}

TEST(QuarantineTest, MissingFileIsNotFound) {
  util::Status status =
      QuarantineArtifact(::testing::TempDir() + "/no_such_artifact.snap");
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

TEST(QuarantineTest, RefusesAlreadyQuarantined) {
  const std::string dir = MakeDir("quarantine_twice");
  const std::string path = dir + "/v02.snap";
  ASSERT_TRUE(util::WriteFile(path, "junk").ok());
  ASSERT_TRUE(QuarantineArtifact(path).ok());
  // Quarantining the quarantined name must refuse, not produce
  // `.rejected.rejected` chains.
  util::Status again = QuarantineArtifact(path + ".rejected");
  EXPECT_EQ(again.code(), util::StatusCode::kInvalidArgument);
}

TEST(PickCandidateTest, EmptyDirectoryIsNotFound) {
  const std::string dir = MakeDir("pick_empty");
  util::Result<std::string> picked = PickCandidate(dir, "");
  ASSERT_FALSE(picked.ok());
  EXPECT_EQ(picked.status().code(), util::StatusCode::kNotFound);
}

TEST(PickCandidateTest, MissingDirectoryIsIoError) {
  util::Result<std::string> picked =
      PickCandidate(::testing::TempDir() + "/no_such_dir", "");
  ASSERT_FALSE(picked.ok());
  EXPECT_EQ(picked.status().code(), util::StatusCode::kIoError);
}

TEST(PickCandidateTest, PicksGreatestEligibleSnap) {
  const std::string dir = MakeDir("pick_greatest");
  ASSERT_TRUE(util::WriteFile(dir + "/v001.snap", "a").ok());
  ASSERT_TRUE(util::WriteFile(dir + "/v003.snap", "c").ok());
  ASSERT_TRUE(util::WriteFile(dir + "/v002.snap", "b").ok());
  // Non-.snap names are invisible: in-progress temps, quarantined rejects,
  // unrelated files.
  ASSERT_TRUE(util::WriteFile(dir + "/v009.snap.tmp", "t").ok());
  ASSERT_TRUE(util::WriteFile(dir + "/v008.snap.rejected", "r").ok());
  ASSERT_TRUE(util::WriteFile(dir + "/notes.txt", "n").ok());

  util::Result<std::string> picked = PickCandidate(dir, "");
  ASSERT_TRUE(picked.ok());
  EXPECT_EQ(*picked, "v003.snap");

  // Strictly greater than current: the served version itself is not a
  // candidate, and older versions never roll back.
  EXPECT_FALSE(PickCandidate(dir, "v003.snap").ok());
  util::Result<std::string> newer = PickCandidate(dir, "v002.snap");
  ASSERT_TRUE(newer.ok());
  EXPECT_EQ(*newer, "v003.snap");
}

TEST(LoadRetryTest, GoodSnapshotLoadsFirstTry) {
  const std::string dir = MakeDir("load_good");
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  const std::string path = dir + "/v001.snap";
  ASSERT_TRUE(core::SaveSnapshot(*origin, path).ok());

  std::vector<int> sleeps;
  LoadOutcome outcome = LoadSnapshotWithRetry(
      path, RetryPolicy{}, /*quarantine_on_permanent=*/true,
      [&sleeps](int ms) { sleeps.push_back(ms); });
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  ASSERT_NE(outcome.session, nullptr);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_TRUE(sleeps.empty());
  EXPECT_FALSE(outcome.quarantined);
  EXPECT_EQ(outcome.session->labels(), origin->labels());
}

TEST(LoadRetryTest, MissingFileRetriesWithCappedBackoffThenGivesUp) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.backoff_initial_ms = 10;
  policy.backoff_max_ms = 25;
  std::vector<int> sleeps;
  LoadOutcome outcome = LoadSnapshotWithRetry(
      ::testing::TempDir() + "/never_exists.snap", policy,
      /*quarantine_on_permanent=*/true,
      [&sleeps](int ms) { sleeps.push_back(ms); });
  ASSERT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), util::StatusCode::kUnavailable);
  EXPECT_TRUE(util::IsRetryable(outcome.status));
  EXPECT_EQ(outcome.attempts, 4);
  // One backoff between each pair of attempts, jittered within
  // [delay/2, delay] and capped at backoff_max_ms.
  ASSERT_EQ(sleeps.size(), 3u);
  EXPECT_GE(sleeps[0], 5);
  EXPECT_LE(sleeps[0], 10);
  EXPECT_GE(sleeps[1], 10);
  EXPECT_LE(sleeps[1], 20);
  EXPECT_GE(sleeps[2], 12);  // min(40, cap 25) jittered to [12, 25]
  EXPECT_LE(sleeps[2], 25);
  EXPECT_FALSE(outcome.quarantined);
}

TEST(LoadRetryTest, CorruptFileQuarantinesWithoutRetry) {
  const std::string dir = MakeDir("load_corrupt");
  const std::string path = dir + "/v001.snap";
  ASSERT_TRUE(
      util::WriteFile(path, "XXXXXXXX not a snapshot at all").ok());
  std::vector<int> sleeps;
  LoadOutcome outcome = LoadSnapshotWithRetry(
      path, RetryPolicy{}, /*quarantine_on_permanent=*/true,
      [&sleeps](int ms) { sleeps.push_back(ms); });
  ASSERT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), util::StatusCode::kDataLoss);
  EXPECT_EQ(outcome.attempts, 1);  // permanent: no retry loop
  EXPECT_TRUE(sleeps.empty());
  EXPECT_TRUE(outcome.quarantined);
  EXPECT_FALSE(util::ReadFile(path).ok());
  EXPECT_TRUE(util::ReadFile(path + ".rejected").ok());
}

TEST(LoadRetryTest, VerifierRejectionCarriesReportAndQuarantines) {
  const std::string dir = MakeDir("load_unverifiable");
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  // A snapshot that parses (magic, version, checksum all fine) but violates
  // a verifier invariant: duplicate pool names break the name<->id
  // bijection.
  core::SnapshotPackage snapshot = core::MakeSnapshot(*origin);
  ASSERT_GE(snapshot.pool_names.size(), 2u);
  snapshot.pool_names[1] = snapshot.pool_names[0];
  const std::string path = dir + "/v001.snap";
  ASSERT_TRUE(util::WriteFile(path, core::SerializeSnapshot(snapshot)).ok());

  LoadOutcome outcome = LoadSnapshotWithRetry(
      path, RetryPolicy{}, /*quarantine_on_permanent=*/true,
      [](int) {});
  ASSERT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), util::StatusCode::kDataLoss);
  // The rendered VerifyReport travels with the outcome so the daemon can
  // log exactly why the artifact was condemned.
  EXPECT_NE(outcome.verify_report.find("error"), std::string::npos);
  EXPECT_TRUE(outcome.quarantined);
}

TEST(LoadRetryTest, NoQuarantineWhenDisabled) {
  const std::string dir = MakeDir("load_no_quarantine");
  const std::string path = dir + "/v001.snap";
  ASSERT_TRUE(util::WriteFile(path, "XXXXXXXX garbage").ok());
  LoadOutcome outcome = LoadSnapshotWithRetry(
      path, RetryPolicy{}, /*quarantine_on_permanent=*/false, [](int) {});
  ASSERT_FALSE(outcome.status.ok());
  EXPECT_FALSE(outcome.quarantined);
  EXPECT_TRUE(util::ReadFile(path).ok());  // left in place
}

TEST(WatcherTest, PollOnceSwapsOnNewVerifiedSnapshots) {
  const std::string dir = MakeDir("watcher_swaps");
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  ASSERT_TRUE(core::SaveSnapshot(*origin, dir + "/v001.snap").ok());

  std::vector<std::string> swapped;
  std::vector<std::string> logged;
  SnapshotWatcher::Options options;
  options.dir = dir;
  options.retry.max_attempts = 1;
  SnapshotWatcher watcher(
      options,
      [&swapped](std::shared_ptr<const CompiledSession> loaded,
                 const std::string& name) {
        ASSERT_NE(loaded, nullptr);
        swapped.push_back(name);
      },
      [&logged](const std::string& line) { logged.push_back(line); });

  ASSERT_TRUE(watcher.PollOnce().ok());
  ASSERT_EQ(swapped.size(), 1u);
  EXPECT_EQ(swapped[0], "v001.snap");
  EXPECT_EQ(watcher.current_name(), "v001.snap");

  // Steady state: nothing new, no spurious swaps.
  ASSERT_TRUE(watcher.PollOnce().ok());
  EXPECT_EQ(swapped.size(), 1u);

  // A newer version appears -> one more swap.
  ASSERT_TRUE(core::SaveSnapshot(*origin, dir + "/v002.snap").ok());
  ASSERT_TRUE(watcher.PollOnce().ok());
  ASSERT_EQ(swapped.size(), 2u);
  EXPECT_EQ(swapped[1], "v002.snap");
  EXPECT_EQ(watcher.stats().swaps, 2u);
}

TEST(WatcherTest, PollOnceQuarantinesCorruptAndKeepsServing) {
  const std::string dir = MakeDir("watcher_quarantines");
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  ASSERT_TRUE(core::SaveSnapshot(*origin, dir + "/v001.snap").ok());

  std::vector<std::string> swapped;
  std::string log_text;
  SnapshotWatcher::Options options;
  options.dir = dir;
  options.retry.max_attempts = 1;
  SnapshotWatcher watcher(
      options,
      [&swapped](std::shared_ptr<const CompiledSession>,
                 const std::string& name) { swapped.push_back(name); },
      [&log_text](const std::string& line) { log_text += line + "\n"; });
  ASSERT_TRUE(watcher.PollOnce().ok());
  ASSERT_EQ(swapped.size(), 1u);

  // A corrupt v002 appears: a full-size artifact whose interior bytes are
  // flipped (checksum mismatch — a short junk file would classify as a
  // torn write and be retried instead). PollOnce reports the failure,
  // quarantines the file, and the served name stays v001.
  std::string bad = core::SerializeSnapshot(core::MakeSnapshot(*origin));
  for (std::size_t i = bad.size() / 2; i < bad.size() / 2 + 8; ++i) {
    bad[i] = static_cast<char>(~bad[i]);
  }
  ASSERT_TRUE(util::WriteFile(dir + "/v002.snap", bad).ok());
  util::Status poll = watcher.PollOnce();
  ASSERT_FALSE(poll.ok());
  EXPECT_EQ(poll.code(), util::StatusCode::kDataLoss);
  EXPECT_EQ(swapped.size(), 1u);
  EXPECT_EQ(watcher.current_name(), "v001.snap");
  EXPECT_EQ(watcher.stats().quarantines, 1u);
  EXPECT_NE(log_text.find("rejected v002.snap"), std::string::npos);

  // Exactly once: the quarantined file is gone from scans, so the next
  // poll is a clean steady state, not a retry loop.
  ASSERT_TRUE(watcher.PollOnce().ok());
  EXPECT_EQ(watcher.stats().quarantines, 1u);

  // A good v003 still swaps normally afterwards.
  ASSERT_TRUE(core::SaveSnapshot(*origin, dir + "/v003.snap").ok());
  ASSERT_TRUE(watcher.PollOnce().ok());
  ASSERT_EQ(swapped.size(), 2u);
  EXPECT_EQ(swapped[1], "v003.snap");
}

TEST(WatcherTest, BackgroundThreadPicksUpSnapshots) {
  const std::string dir = MakeDir("watcher_thread");
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> swapped;
  SnapshotWatcher::Options options;
  options.dir = dir;
  options.poll_interval_ms = 5;
  SnapshotWatcher watcher(
      options,
      [&](std::shared_ptr<const CompiledSession>, const std::string& name) {
        std::lock_guard<std::mutex> lock(mu);
        swapped.push_back(name);
        cv.notify_all();
      },
      nullptr);
  watcher.Start();
  ASSERT_TRUE(core::SaveSnapshot(*origin, dir + "/v001.snap").ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return !swapped.empty(); }));
  }
  watcher.Stop();
  EXPECT_EQ(swapped[0], "v001.snap");
  EXPECT_GE(watcher.stats().polls, 1u);
}

}  // namespace
}  // namespace cobra::serve
