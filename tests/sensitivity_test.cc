// Tests for polynomial differentiation and the sensitivity ranking.

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "data/example_db.h"
#include "prov/parser.h"

namespace cobra {
namespace {

class DerivativeTest : public ::testing::Test {
 protected:
  prov::Polynomial Parse(const char* text) {
    return prov::ParsePolynomial(text, &pool_).ValueOrDie();
  }
  prov::VarPool pool_;
  prov::VarId x_ = pool_.Intern("x");
  prov::VarId y_ = pool_.Intern("y");
};

TEST_F(DerivativeTest, LinearAndPowerRules) {
  // d/dx (3xy + 2x + y + 5) = 3y + 2.
  EXPECT_EQ(Parse("3 * x * y + 2 * x + y + 5").Derivative(x_),
            Parse("3 * y + 2"));
  // d/dx (x^3) = 3x^2 ; d/dx (x^2 y) = 2xy.
  EXPECT_EQ(Parse("x^3").Derivative(x_), Parse("3 * x^2"));
  EXPECT_EQ(Parse("x^2 * y").Derivative(x_), Parse("2 * x * y"));
}

TEST_F(DerivativeTest, MissingVariableGivesZero) {
  EXPECT_TRUE(Parse("y + 7").Derivative(x_).IsZero());
  EXPECT_TRUE(prov::Polynomial().Derivative(x_).IsZero());
}

TEST_F(DerivativeTest, SumRuleHolds) {
  prov::Polynomial a = Parse("x^2 * y + 3 * x");
  prov::Polynomial b = Parse("x * y - 2");
  EXPECT_EQ(a.Plus(b).Derivative(x_),
            a.Derivative(x_).Plus(b.Derivative(x_)));
}

TEST_F(DerivativeTest, NumericallyMatchesDifferenceQuotient) {
  prov::Polynomial p = Parse("2 * x^2 * y + 4 * x + y");
  prov::Valuation at(pool_);
  at.Set(x_, 1.5);
  at.Set(y_, 2.0);
  double analytic = p.Derivative(x_).Eval(at);
  const double h = 1e-6;
  prov::Valuation hi = at, lo = at;
  hi.Set(x_, 1.5 + h);
  lo.Set(x_, 1.5 - h);
  double numeric = (p.Eval(hi) - p.Eval(lo)) / (2 * h);
  EXPECT_NEAR(analytic, numeric, 1e-5);
}

TEST(SensitivityTest, RanksByTotalAbsoluteDerivative) {
  prov::VarPool pool;
  prov::PolySet polys =
      prov::ParsePolySet("P1 = 10 * a + 1 * b\nP2 = 5 * a + 2 * b\n", &pool)
          .ValueOrDie();
  prov::Valuation at(pool);
  core::SensitivityReport report =
      core::AnalyzeSensitivity(polys, at, pool);
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[0].name, "a");
  EXPECT_DOUBLE_EQ(report.rows[0].impact, 15.0);
  EXPECT_EQ(report.rows[1].name, "b");
  EXPECT_DOUBLE_EQ(report.rows[1].impact, 3.0);
  EXPECT_NE(report.ToString().find("a"), std::string::npos);
}

TEST(SensitivityTest, RunningExampleRanking) {
  // On P1/P2 under the neutral valuation the month variables dominate:
  // every monomial contains one, so their impact is the whole month share.
  prov::VarPool pool;
  prov::PolySet polys =
      prov::ParsePolySet(data::kExamplePolynomialsText, &pool).ValueOrDie();
  prov::Valuation at(pool);
  core::SensitivityReport report =
      core::AnalyzeSensitivity(polys, at, pool);
  ASSERT_FALSE(report.rows.empty());
  // m3: (240+114.45+72.5+24.2) + (80.5+100.65+56.5) = 688.8 — largest;
  // m1: (208.8+127.4+75.9+42) + (77.9+69.7+52.2) = 653.9 — second.
  EXPECT_EQ(report.rows[0].name, "m3");
  EXPECT_NEAR(report.rows[0].impact, 688.8, 1e-9);
  EXPECT_EQ(report.rows[1].name, "m1");
  EXPECT_NEAR(report.rows[1].impact, 653.9, 1e-9);
  // Variables absent from a polynomial contribute only where they occur:
  // p1 impact = 208.8·1 + 240·1 = 448.8.
  for (const auto& row : report.rows) {
    if (row.name == "p1") {
      EXPECT_NEAR(row.impact, 448.8, 1e-9);
    }
  }
}

TEST(SensitivityTest, EvaluatesAtTheGivenScenario) {
  prov::VarPool pool;
  prov::PolySet polys =
      prov::ParsePolySet("P = x * y\n", &pool).ValueOrDie();
  prov::Valuation at(pool);
  at.SetByName(pool, "y", 3.0).CheckOK();
  core::SensitivityReport report =
      core::AnalyzeSensitivity(polys, at, pool);
  // d(xy)/dx at y=3 is 3; d(xy)/dy at x=1 is 1.
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_EQ(report.rows[0].name, "x");
  EXPECT_DOUBLE_EQ(report.rows[0].impact, 3.0);
  EXPECT_DOUBLE_EQ(report.rows[1].impact, 1.0);
}

}  // namespace
}  // namespace cobra
