// Tests for AnalyzeSingleTree and the size identity
// compressed_size(C) == base + Σ weight over the cut — verified against
// actual substitution on both crafted and random inputs.

#include "core/profile.h"

#include <gtest/gtest.h>

#include "core/apply.h"
#include "data/example_db.h"
#include "prov/parser.h"
#include "util/rng.h"

namespace cobra::core {
namespace {

class ProfileTest : public ::testing::Test {
 protected:
  void LoadFigure2() {
    tree_ = ParseTree(data::kFigure2TreeText, &pool_).ValueOrDie();
    polys_ = prov::ParsePolySet(data::kExamplePolynomialsText, &pool_)
                 .ValueOrDie();
  }

  prov::VarPool pool_;
  AbstractionTree tree_;
  prov::PolySet polys_;
};

TEST_F(ProfileTest, ExamplePolynomialWeights) {
  LoadFigure2();
  TreeProfile profile = AnalyzeSingleTree(polys_, tree_, pool_).ValueOrDie();
  EXPECT_EQ(profile.total_monomials, 14u);
  EXPECT_EQ(profile.base_monomials, 0u);
  EXPECT_EQ(profile.base_variables, 2u);  // m1, m3 are off-tree

  // Leaves used in P1/P2 carry 2 triples each ((poly, exp=1, residue m1/m3)).
  for (const char* leaf : {"p1", "f1", "y1", "v", "b1", "b2", "e"}) {
    NodeId id = tree_.FindByName(leaf);
    EXPECT_EQ(profile.weight[id], 2u) << leaf;
  }
  // Unused leaves weigh 0.
  for (const char* leaf : {"p2", "f2", "y2", "y3"}) {
    EXPECT_EQ(profile.weight[tree_.FindByName(leaf)], 0u) << leaf;
  }
  // Inner nodes take set unions of triples (poly, exp, residue). b1 and b2
  // both occur with residues {m1, m3} in P2, so their triples coincide:
  // |S(SB)| = 2, and e adds the same two triples, so |S(Business)| = 2 —
  // collapsing Business merges all six P2 monomials into two.
  EXPECT_EQ(profile.weight[tree_.FindByName("SB")], 2u);
  EXPECT_EQ(profile.weight[tree_.FindByName("Business")], 2u);
  // Special: f1/y1/v all occur in P1 with residues {m1, m3} -> 2 triples.
  EXPECT_EQ(profile.weight[tree_.FindByName("Special")], 2u);
  EXPECT_EQ(profile.weight[tree_.FindByName("Standard")], 2u);
  // Root: P1 contributes {(P1,m1),(P1,m3)}, P2 {(P2,m1),(P2,m3)} -> 4.
  EXPECT_EQ(profile.weight[tree_.root()], 4u);
}

TEST_F(ProfileTest, SizeOfCutMatchesExample4) {
  LoadFigure2();
  TreeProfile profile = AnalyzeSingleTree(polys_, tree_, pool_).ValueOrDie();
  // S1 = {Business, Special, Standard}: 2 + 2 + 2 = 6 (compressed P1 has 4
  // monomials as the paper prints; compressed P2 collapses to 2).
  Cut s1 = Cut::FromNames(tree_, {"Business", "Special", "Standard"})
               .ValueOrDie();
  EXPECT_EQ(profile.SizeOfCut(s1), 6u);
  // S5 = {Plans}: 4 monomials (2 per polynomial).
  Cut s5 = Cut::FromNames(tree_, {"Plans"}).ValueOrDie();
  EXPECT_EQ(profile.SizeOfCut(s5), 4u);
  // Leaf cut: original size.
  EXPECT_EQ(profile.SizeOfCut(Cut::Leaves(tree_)), 14u);
  EXPECT_EQ(profile.VariablesOfCut(s1), 2u + 3u);
}

TEST_F(ProfileTest, RejectsTwoTreeVariablesInOneMonomial) {
  prov::PolySet polys =
      prov::ParsePolySet("P = b1 * b2\n", &pool_).ValueOrDie();
  AbstractionTree tree = ParseTree(data::kFigure2TreeText, &pool_).ValueOrDie();
  auto result = AnalyzeSingleTree(polys, tree, pool_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(ProfileTest, RejectsInnerNameCollidingWithUsedVariable) {
  // "SB" used as a data variable while also naming an inner node.
  prov::PolySet polys =
      prov::ParsePolySet("P = b1 * SB\n", &pool_).ValueOrDie();
  AbstractionTree tree = ParseTree(data::kFigure2TreeText, &pool_).ValueOrDie();
  auto result = AnalyzeSingleTree(polys, tree, pool_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(ProfileTest, BaseMonomialsCountedOnce) {
  prov::PolySet polys =
      prov::ParsePolySet("P = b1 * m1 + 3 * m1 + 2 * q + 5\n", &pool_)
          .ValueOrDie();
  AbstractionTree tree = ParseTree(data::kFigure2TreeText, &pool_).ValueOrDie();
  TreeProfile profile = AnalyzeSingleTree(polys, tree, pool_).ValueOrDie();
  EXPECT_EQ(profile.base_monomials, 3u);  // 3*m1, 2*q, 5
  EXPECT_EQ(profile.base_variables, 2u);  // m1, q
  EXPECT_EQ(profile.total_monomials, 4u);
}

TEST_F(ProfileTest, ExponentsDistinguishTriples) {
  prov::PolySet polys =
      prov::ParsePolySet("P = b1 + b1^2\n", &pool_).ValueOrDie();
  AbstractionTree tree = ParseTree(data::kFigure2TreeText, &pool_).ValueOrDie();
  TreeProfile profile = AnalyzeSingleTree(polys, tree, pool_).ValueOrDie();
  EXPECT_EQ(profile.weight[tree.FindByName("b1")], 2u);
  // Both monomials survive any abstraction (exponents differ).
  EXPECT_EQ(profile.SizeOfCut(Cut::Root(tree)), 2u);
}

/// Property: for random polynomials over the Figure 2 variables plus noise
/// variables, SizeOfCut equals the true substituted size for every cut.
class SizeIdentityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SizeIdentityProperty, ProfilePredictsSubstitutedSizeForAllCuts) {
  util::Rng rng(GetParam());
  prov::VarPool pool;
  AbstractionTree tree = ParseTree(data::kFigure2TreeText, &pool).ValueOrDie();
  std::vector<prov::VarId> tree_vars;
  for (NodeId leaf : tree.Leaves()) tree_vars.push_back(tree.node(leaf).var);
  std::vector<prov::VarId> noise{pool.Intern("n1"), pool.Intern("n2"),
                                 pool.Intern("n3")};

  prov::PolySet polys;
  std::size_t num_polys = 1 + rng.NextBelow(3);
  for (std::size_t q = 0; q < num_polys; ++q) {
    std::vector<prov::Term> terms;
    std::size_t n = 1 + rng.NextBelow(20);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<prov::VarPower> factors;
      if (!rng.NextBool(0.2)) {
        factors.push_back({tree_vars[rng.NextBelow(tree_vars.size())],
                           static_cast<std::uint32_t>(1 + rng.NextBelow(2))});
      }
      std::size_t extra = rng.NextBelow(3);
      for (std::size_t j = 0; j < extra; ++j) {
        factors.push_back({noise[rng.NextBelow(noise.size())],
                           static_cast<std::uint32_t>(1 + rng.NextBelow(2))});
      }
      terms.push_back({prov::Monomial::FromFactors(std::move(factors)),
                       rng.NextDoubleInRange(0.5, 9.5)});
    }
    polys.Add("P" + std::to_string(q),
              prov::Polynomial::FromTerms(std::move(terms)));
  }

  TreeProfile profile = AnalyzeSingleTree(polys, tree, pool).ValueOrDie();
  EXPECT_EQ(profile.total_monomials, polys.TotalMonomials());

  for (const Cut& cut : EnumerateCuts(tree).ValueOrDie()) {
    prov::VarPool scratch = pool;  // ApplyCut may intern meta-variables
    Abstraction abs = ApplyCut(polys, tree, cut, &scratch).ValueOrDie();
    EXPECT_EQ(profile.SizeOfCut(cut), abs.compressed_size)
        << "cut " << cut.ToString(tree);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SizeIdentityProperty,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace cobra::core
