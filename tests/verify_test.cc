// Tests for the static artifact verifier (verify/verify.h): clean compiled
// artifacts verify clean; every structural invariant has a negative-path
// test asserting the exact Finding it produces; the trust-boundary wiring
// (FromSnapshot, plan-cache insert) refuses inconsistent artifacts naming
// the offending section; and a bit-flip fuzz over the binary snapshot
// format proves every seeded corruption is rejected by the checksum or the
// verifier before execution — or executes without fault.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/batch_plan.h"
#include "core/compiled_session.h"
#include "core/io.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/example_db.h"
#include "prov/eval_program.h"
#include "util/hash.h"
#include "util/rng.h"
#include "verify/verify.h"

namespace cobra::verify {
namespace {

using core::BatchOptions;
using core::CompiledSession;
using core::EvalProgramImage;
using core::MakeSnapshot;
using core::ParseSnapshot;
using core::ScenarioSet;
using core::SerializeSnapshot;
using core::Session;
using core::SnapshotPackage;

std::shared_ptr<const CompiledSession> ExampleSnapshot(Session* session) {
  session->LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
  session->SetTreeText(data::kFigure2TreeText).CheckOK();
  session->SetBound(6);
  session->Compress().ValueOrDie();
  return session->Snapshot().ValueOrDie();
}

ScenarioSet ExampleScenarios() {
  ScenarioSet scenarios;
  scenarios.Add("baseline");
  scenarios.Add("slump").ValueOrDie().Set("Business", 0.8);
  scenarios.Add("mixed").ValueOrDie().Set("Business", 1.25).Set("Special", 0.9);
  scenarios.Add("leafy").ValueOrDie().Set("p1", 0.7).Set("m3", 1.1);
  return scenarios;
}

/// A tiny well-formed program image over 3 pool variables:
/// P0 = 2*x0*x1 + 3*x2, P1 = 5*x0.
EvalProgramImage SmallImage() {
  EvalProgramImage image;
  image.poly_starts = {0, 2, 3};
  image.term_starts = {0, 2, 3, 4};
  image.coeffs = {2.0, 3.0, 5.0};
  image.factors = {0, 1, 2, 0};
  return image;
}

/// Asserts `report` holds exactly one finding, an error, with precisely
/// these fields.
void ExpectSingleError(const VerifyReport& report, const std::string& artifact,
                       std::size_t offset, const std::string& message) {
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.findings().size(), 1u) << report.ToString();
  const Finding& finding = report.findings()[0];
  EXPECT_EQ(finding.severity, Severity::kError);
  EXPECT_EQ(finding.artifact, artifact);
  EXPECT_EQ(finding.offset, offset);
  EXPECT_EQ(finding.message, message);
}

/// True when some finding's message contains `needle`.
bool HasFindingContaining(const VerifyReport& report,
                          const std::string& needle) {
  for (const Finding& finding : report.findings()) {
    if (finding.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------- report

TEST(VerifyReportTest, FindingRendering) {
  Finding finding{Severity::kError, "pool", 3, "duplicate name"};
  EXPECT_EQ(finding.ToString(), "error pool[3]: duplicate name");
  finding.severity = Severity::kWarning;
  EXPECT_EQ(finding.ToString(), "warning pool[3]: duplicate name");
}

TEST(VerifyReportTest, CountsMergesAndFirstError) {
  VerifyReport a;
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.FirstError(), nullptr);
  a.AddWarning("plan", 0, "suspicious");
  EXPECT_TRUE(a.ok());  // warnings alone leave the artifact servable
  EXPECT_EQ(a.num_warnings(), 1u);
  EXPECT_EQ(a.FirstError(), nullptr);

  VerifyReport b;
  b.AddError("labels", 2, "broken");
  a.Merge(b);
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.num_errors(), 1u);
  EXPECT_EQ(a.num_warnings(), 1u);
  ASSERT_NE(a.FirstError(), nullptr);
  EXPECT_EQ(a.FirstError()->message, "broken");

  const std::string table = a.ToString();
  EXPECT_NE(table.find("warning"), std::string::npos);
  EXPECT_NE(table.find("labels"), std::string::npos);
  EXPECT_NE(table.find("1 error(s), 1 warning(s)"), std::string::npos);
}

TEST(VerifyReportTest, CleanReportRendersSummaryOnly) {
  VerifyReport report;
  EXPECT_EQ(report.ToString(),
            "0 finding(s): 0 error(s), 0 warning(s) — artifact is servable\n");
}

// --------------------------------------------------------------- program

TEST(VerifyProgramTest, CleanImageAndProgramVerifyClean) {
  EvalProgramImage image = SmallImage();
  EXPECT_TRUE(VerifyProgram(image, 3, "program").ok());
  EXPECT_TRUE(VerifyProgram(image).ok());  // unbounded pool

  prov::EvalProgram program =
      prov::EvalProgram::FromParts(image.poly_starts, image.term_starts,
                                   image.coeffs, image.factors)
          .ValueOrDie();
  EXPECT_TRUE(VerifyProgram(program, 3).ok());
}

TEST(VerifyProgramTest, EmptyPolyStarts) {
  EvalProgramImage image = SmallImage();
  image.poly_starts.clear();
  const VerifyReport report = VerifyProgram(image, 3, "program");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasFindingContaining(
      report, "poly_starts must be non-empty and start at 0"))
      << report.ToString();
}

TEST(VerifyProgramTest, DecreasingPolyStarts) {
  EvalProgramImage image = SmallImage();
  image.poly_starts = {0, 3, 2};  // still ends "below" coeffs? ends at 2 != 3
  const VerifyReport report = VerifyProgram(image, 3, "program");
  EXPECT_TRUE(HasFindingContaining(
      report,
      "poly_starts decreases at entry 2 (2 after 3): term ranges would "
      "overlap"))
      << report.ToString();
}

TEST(VerifyProgramTest, PolyStartsNotCovering) {
  EvalProgramImage image = SmallImage();
  image.poly_starts = {0, 2, 2};  // last range stops short of term 3
  ExpectSingleError(VerifyProgram(image, 3, "program"), "program", 2,
                    "poly_starts ends at 2 but the program has 3 terms: term "
                    "ranges must cover the term array exactly");
}

TEST(VerifyProgramTest, TermStartsWrongCount) {
  EvalProgramImage image = SmallImage();
  image.term_starts = {0, 2, 4};  // 3 entries for 3 terms (want 4)
  ExpectSingleError(VerifyProgram(image, 3, "program"), "program", 0,
                    "term_starts has 3 entries for 3 terms (want terms + 1, "
                    "starting at 0)");
}

TEST(VerifyProgramTest, DecreasingTermStarts) {
  EvalProgramImage image = SmallImage();
  image.term_starts = {0, 3, 2, 4};
  const VerifyReport report = VerifyProgram(image, 3, "program");
  EXPECT_TRUE(HasFindingContaining(
      report,
      "term_starts decreases at entry 2 (2 after 3): factor ranges would "
      "overlap"))
      << report.ToString();
}

TEST(VerifyProgramTest, TermStartsNotCovering) {
  EvalProgramImage image = SmallImage();
  image.term_starts = {0, 2, 3, 3};  // ends short of the 4 factors
  ExpectSingleError(VerifyProgram(image, 3, "program"), "program", 3,
                    "term_starts ends at 3 but the program has 4 factors");
}

TEST(VerifyProgramTest, NonFiniteCoefficients) {
  EvalProgramImage image = SmallImage();
  image.coeffs[1] = std::numeric_limits<double>::quiet_NaN();
  ExpectSingleError(VerifyProgram(image, 3, "program"), "program", 1,
                    "coefficient 1 is NaN (literals must be finite)");

  image = SmallImage();
  image.coeffs[2] = std::numeric_limits<double>::infinity();
  ExpectSingleError(VerifyProgram(image, 3, "program"), "program", 2,
                    "coefficient 2 is infinite (literals must be finite)");
}

TEST(VerifyProgramTest, InvalidVarFactor) {
  EvalProgramImage image = SmallImage();
  image.factors[0] = prov::kInvalidVar;
  ExpectSingleError(VerifyProgram(image, 3, "program"), "program", 0,
                    "factor 0 is kInvalidVar");
}

TEST(VerifyProgramTest, FactorOutsidePool) {
  EvalProgramImage image = SmallImage();
  image.factors[2] = 9;
  ExpectSingleError(VerifyProgram(image, 3, "program"), "program", 2,
                    "factor 2 references variable id 9 outside the pool (3 "
                    "variables)");
  // The same image is clean when no pool bound applies.
  EXPECT_TRUE(VerifyProgram(image).ok());
}

TEST(VerifyProgramTest, ArtifactNameFlowsIntoFindings) {
  EvalProgramImage image = SmallImage();
  image.factors[0] = prov::kInvalidVar;
  const VerifyReport report = VerifyProgram(image, 3, "compressed program");
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.FirstError()->artifact, "compressed program");
}

// -------------------------------------------------------------- snapshot

class VerifySnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>();
    snapshot_ = ExampleSnapshot(session_.get());
    package_ = MakeSnapshot(*snapshot_);
  }

  std::unique_ptr<Session> session_;
  std::shared_ptr<const CompiledSession> snapshot_;
  SnapshotPackage package_;
};

TEST_F(VerifySnapshotTest, CleanSnapshotVerifiesClean) {
  const VerifyReport report = VerifySnapshot(package_);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.num_errors(), 0u);
}

TEST_F(VerifySnapshotTest, DuplicatePoolName) {
  package_.pool_names[1] = package_.pool_names[0];
  const VerifyReport report = VerifySnapshot(package_);
  ASSERT_FALSE(report.ok());
  const Finding& first = *report.FirstError();
  EXPECT_EQ(first.artifact, "pool");
  EXPECT_EQ(first.offset, 1u);
  EXPECT_EQ(first.message,
            "duplicate pool name \"" + package_.pool_names[0] +
                "\" (id 1): name/id mapping is not a bijection");

  // The serving-side gate refuses the package, naming the section.
  util::Result<std::shared_ptr<const CompiledSession>> refused =
      CompiledSession::FromSnapshot(package_);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.status().message().find("duplicate pool name"),
            std::string::npos)
      << refused.status().ToString();
  EXPECT_NE(refused.status().message().find("pool["), std::string::npos);
}

TEST_F(VerifySnapshotTest, EmptyPoolName) {
  package_.pool_names[2].clear();
  const VerifyReport report = VerifySnapshot(package_);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.FirstError()->message, "pool name 2 is empty");
}

TEST_F(VerifySnapshotTest, LabelCountMismatch) {
  package_.labels.push_back("extra");
  const VerifyReport report = VerifySnapshot(package_);
  ASSERT_FALSE(report.ok());
  const Finding& first = *report.FirstError();
  EXPECT_EQ(first.artifact, "labels");
  EXPECT_TRUE(first.message.find("does not match") != std::string::npos)
      << first.message;
  EXPECT_FALSE(CompiledSession::FromSnapshot(package_).ok());
}

TEST_F(VerifySnapshotTest, RemapWrongSize) {
  package_.leaf_to_meta.pop_back();
  const VerifyReport report = VerifySnapshot(package_);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.FirstError()->artifact, "leaf_to_meta");
  EXPECT_TRUE(HasFindingContaining(report, "remap covers"))
      << report.ToString();
}

TEST_F(VerifySnapshotTest, RemapEscapesPool) {
  package_.leaf_to_meta[0] =
      static_cast<prov::VarId>(package_.pool_names.size());
  const VerifyReport report = VerifySnapshot(package_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(
      HasFindingContaining(report, "remap is not closed over the pool"))
      << report.ToString();
}

TEST_F(VerifySnapshotTest, RemapNotIdempotent) {
  // Find a leaf that remaps away from itself and point it at another such
  // leaf: v -> l2 where l2 -> meta != l2 breaks idempotence.
  std::size_t v = package_.leaf_to_meta.size();
  std::size_t l2 = package_.leaf_to_meta.size();
  for (std::size_t i = 0; i < package_.leaf_to_meta.size(); ++i) {
    if (package_.leaf_to_meta[i] != i) {
      if (v == package_.leaf_to_meta.size()) {
        v = i;
      } else if (l2 == package_.leaf_to_meta.size()) {
        l2 = i;
      }
    }
  }
  ASSERT_LT(l2, package_.leaf_to_meta.size())
      << "example abstraction must remap at least two leaves";
  package_.leaf_to_meta[v] = static_cast<prov::VarId>(l2);
  const VerifyReport report = VerifySnapshot(package_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasFindingContaining(report, "remap is not idempotent"))
      << report.ToString();
}

TEST_F(VerifySnapshotTest, MetaVarIdOutsidePool) {
  ASSERT_FALSE(package_.meta_vars.empty());
  package_.meta_vars[0].var =
      static_cast<prov::VarId>(package_.pool_names.size() + 7);
  const VerifyReport report = VerifySnapshot(package_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasFindingContaining(report, "outside the pool"))
      << report.ToString();
}

TEST_F(VerifySnapshotTest, MetaVarNameMismatchesPool) {
  ASSERT_FALSE(package_.meta_vars.empty());
  package_.meta_vars[0].name += "_renamed";
  const VerifyReport report = VerifySnapshot(package_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasFindingContaining(report, "does not match pool name"))
      << report.ToString();
  // FromSnapshot previously accepted this desynchronization; the verifier
  // gate now refuses it.
  EXPECT_FALSE(CompiledSession::FromSnapshot(package_).ok());
}

TEST_F(VerifySnapshotTest, MetaVarLeafDisagreesWithRemap) {
  // Reassign one meta-variable's first leaf to a variable the remap says
  // belongs elsewhere (itself).
  ASSERT_FALSE(package_.meta_vars.empty());
  ASSERT_FALSE(package_.meta_vars[0].leaves.empty());
  prov::VarId foreign = prov::kInvalidVar;
  for (std::size_t i = 0; i < package_.leaf_to_meta.size(); ++i) {
    if (package_.leaf_to_meta[i] == i) {
      foreign = static_cast<prov::VarId>(i);
      break;
    }
  }
  ASSERT_NE(foreign, prov::kInvalidVar);
  package_.meta_vars[0].leaves[0] = foreign;
  const VerifyReport report = VerifySnapshot(package_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasFindingContaining(report, "remaps to"))
      << report.ToString();
}

TEST_F(VerifySnapshotTest, EmptyMetaLeavesIsAWarning) {
  ASSERT_FALSE(package_.meta_vars.empty());
  // Clearing the leaves also breaks remap agreement for those leaves, so
  // rebuild the remap to identity for them first: the *only* oddity left
  // is the empty leaf list.
  for (prov::VarId leaf : package_.meta_vars[0].leaves) {
    package_.leaf_to_meta[leaf] = leaf;
  }
  package_.meta_vars[0].leaves.clear();
  const VerifyReport report = VerifySnapshot(package_);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GE(report.num_warnings(), 1u);
  EXPECT_TRUE(HasFindingContaining(report, "abstracts no leaves"))
      << report.ToString();
}

TEST_F(VerifySnapshotTest, DefaultValuationWrongSize) {
  package_.default_meta.pop_back();
  const VerifyReport report = VerifySnapshot(package_);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.FirstError()->artifact, "default valuation");
  EXPECT_TRUE(HasFindingContaining(report, "must be dense"))
      << report.ToString();
}

TEST_F(VerifySnapshotTest, NonFiniteDefaultValue) {
  package_.default_meta[1] = std::numeric_limits<double>::quiet_NaN();
  const VerifyReport report = VerifySnapshot(package_);
  ASSERT_FALSE(report.ok());
  const Finding& first = *report.FirstError();
  EXPECT_EQ(first.artifact, "default valuation");
  EXPECT_EQ(first.offset, 1u);
  EXPECT_EQ(first.message, "default value 1 is not finite");
  EXPECT_FALSE(CompiledSession::FromSnapshot(package_).ok());
}

TEST_F(VerifySnapshotTest, NaNCoefficientInCompressedProgram) {
  ASSERT_FALSE(package_.compressed_program.coeffs.empty());
  package_.compressed_program.coeffs[0] =
      std::numeric_limits<double>::quiet_NaN();
  const VerifyReport report = VerifySnapshot(package_);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.FirstError()->artifact, "compressed program");
  // The serving gate names the offending section in its refusal.
  util::Result<std::shared_ptr<const CompiledSession>> refused =
      CompiledSession::FromSnapshot(package_);
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.status().message().find("compressed program"),
            std::string::npos)
      << refused.status().ToString();
}

// ------------------------------------------------------------------ plan

class VerifyPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_ = std::make_unique<Session>();
    snapshot_ = ExampleSnapshot(session_.get());
    scenarios_ = ExampleScenarios();
  }

  std::unique_ptr<Session> session_;
  std::shared_ptr<const CompiledSession> snapshot_;
  ScenarioSet scenarios_;
};

TEST_F(VerifyPlanTest, CleanPlansVerifyCleanAcrossEngines) {
  for (BatchOptions::Sweep sweep :
       {BatchOptions::Sweep::kAuto, BatchOptions::Sweep::kBlocked,
        BatchOptions::Sweep::kSparseDelta, BatchOptions::Sweep::kDenseCopy}) {
    BatchOptions options;
    options.sweep = sweep;
    std::shared_ptr<const core::BatchPlan> plan =
        snapshot_->PlanBatch(scenarios_, options).ValueOrDie();
    const VerifyReport report = VerifyPlan(*plan, *snapshot_, &scenarios_);
    EXPECT_TRUE(report.ok()) << "engine " << SweepName(sweep) << "\n"
                             << report.ToString();
  }
}

TEST_F(VerifyPlanTest, RaggedBlockedPlanVerifiesClean) {
  // 4 scenarios at 8 lanes: one ragged block whose table carries the real
  // lane count — the lane/block consistency checks must accept it.
  BatchOptions options;
  options.sweep = BatchOptions::Sweep::kBlocked;
  options.block_lanes = 8;
  std::shared_ptr<const core::BatchPlan> plan =
      snapshot_->PlanBatch(scenarios_, options).ValueOrDie();
  EXPECT_TRUE(VerifyPlan(*plan, *snapshot_, &scenarios_).ok());

  options.block_lanes = 4;
  ScenarioSet five = scenarios_;
  five.Add("fifth").ValueOrDie().Set("Business", 1.01);
  plan = snapshot_->PlanBatch(five, options).ValueOrDie();
  EXPECT_TRUE(VerifyPlan(*plan, *snapshot_, &five).ok());
}

TEST_F(VerifyPlanTest, SixteenLanePlanVerifiesClean) {
  // 16 is a compiled kernel width: the plan builds, executes and verifies.
  BatchOptions options;
  options.sweep = BatchOptions::Sweep::kBlocked;
  options.block_lanes = 16;
  std::shared_ptr<const core::BatchPlan> plan =
      snapshot_->PlanBatch(scenarios_, options).ValueOrDie();
  EXPECT_EQ(plan->lanes(), 16u);
  const VerifyReport report = VerifyPlan(*plan, *snapshot_, &scenarios_);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(snapshot_->Execute(*plan).ok());
}

TEST_F(VerifyPlanTest, TwelveLanesAreRejectedAtValidation) {
  // 12 is not a compiled width; the refusal names the knob and the
  // accepted values.
  BatchOptions options;
  options.sweep = BatchOptions::Sweep::kBlocked;
  options.block_lanes = 12;
  util::Result<core::BatchAssignReport> result =
      snapshot_->AssignBatch(scenarios_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(),
            "AssignBatch: invalid BatchOptions.block_lanes = 12 (accepted: "
            "4, 8 or 16; kAuto picks the lane count itself and the scalar "
            "engines ignore the knob)");
}

TEST_F(VerifyPlanTest, PrefetchDistanceOutOfRangeIsRejectedAtValidation) {
  BatchOptions options;
  options.prefetch_distance = 65;
  util::Result<core::BatchAssignReport> result =
      snapshot_->AssignBatch(scenarios_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(),
            "AssignBatch: invalid BatchOptions.prefetch_distance = 65 "
            "(accepted: 0 to 64 cache lines ahead of the SoA kernels' "
            "factor/coeff cursors; 0 disables prefetching)");
}

TEST_F(VerifyPlanTest, SoAPlanVerifiesCleanAndTagDisagreementIsDetected) {
  BatchOptions options;
  options.sweep = BatchOptions::Sweep::kBlocked;
  options.layout = BatchOptions::Layout::kSoA;
  std::shared_ptr<const core::BatchPlan> plan =
      snapshot_->PlanBatch(scenarios_, options).ValueOrDie();
  ASSERT_EQ(plan->layout(), prov::EvalLayout::kSoA);
  EXPECT_TRUE(VerifyPlan(*plan, *snapshot_, &scenarios_).ok());

  // Re-tag the full image as AoS without touching its arrays: the layout
  // invariant must catch the disagreement.
  auto retagged = std::make_shared<const prov::EvalImage>(
      plan->core()->full_image()->WithLayoutTag(prov::EvalLayout::kAoS));
  std::shared_ptr<const core::BatchPlan> tampered = core::BatchPlan::FromParts(
      plan->core()->WithImages(retagged, plan->core()->compressed_image()),
      std::make_shared<core::PlanBaseOverlay>(plan->overlay()));
  const VerifyReport report = VerifyPlan(*tampered, *snapshot_, &scenarios_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasFindingContaining(
      report, "image layout tag AoS disagrees with the plan layout SoA"))
      << report.ToString();
}

TEST_F(VerifyPlanTest, SwappedImagesDoNotReDeriveFromThePrograms) {
  // Splice the compressed image into the full slot (and vice versa): each
  // image is internally consistent but no longer mirrors the program its
  // slot claims, so the re-derivation check must fire.
  BatchOptions options;
  options.sweep = BatchOptions::Sweep::kBlocked;
  options.layout = BatchOptions::Layout::kSoA;
  std::shared_ptr<const core::BatchPlan> plan =
      snapshot_->PlanBatch(scenarios_, options).ValueOrDie();
  std::shared_ptr<const core::BatchPlan> tampered = core::BatchPlan::FromParts(
      plan->core()->WithImages(plan->core()->compressed_image(),
                               plan->core()->full_image()),
      std::make_shared<core::PlanBaseOverlay>(plan->overlay()));
  const VerifyReport report = VerifyPlan(*tampered, *snapshot_, &scenarios_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasFindingContaining(report, "do not re-derive"))
      << report.ToString();
}

TEST_F(VerifyPlanTest, AoSPlanCarryingImagesIsDetected) {
  BatchOptions soa;
  soa.sweep = BatchOptions::Sweep::kBlocked;
  soa.layout = BatchOptions::Layout::kSoA;
  std::shared_ptr<const core::BatchPlan> donor =
      snapshot_->PlanBatch(scenarios_, soa).ValueOrDie();

  BatchOptions aos;
  aos.sweep = BatchOptions::Sweep::kBlocked;
  aos.layout = BatchOptions::Layout::kAoS;
  std::shared_ptr<const core::BatchPlan> plan =
      snapshot_->PlanBatch(scenarios_, aos).ValueOrDie();
  std::shared_ptr<const core::BatchPlan> tampered = core::BatchPlan::FromParts(
      plan->core()->WithImages(donor->core()->full_image(),
                               donor->core()->compressed_image()),
      std::make_shared<core::PlanBaseOverlay>(plan->overlay()));
  const VerifyReport report = VerifyPlan(*tampered, *snapshot_, &scenarios_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasFindingContaining(report,
                                   "AoS plan carries SoA execution images"))
      << report.ToString();
}

TEST_F(VerifyPlanTest, ForeignPlanIsRejected) {
  Session other_session;
  std::shared_ptr<const CompiledSession> other =
      ExampleSnapshot(&other_session);
  std::shared_ptr<const core::BatchPlan> plan =
      snapshot_->PlanBatch(scenarios_).ValueOrDie();
  const VerifyReport report = VerifyPlan(*plan, *other);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.FirstError()->message,
            "plan was built against a different (or since-destroyed) "
            "session");
}

TEST_F(VerifyPlanTest, FingerprintMismatchIsDetected) {
  std::shared_ptr<const core::BatchPlan> plan =
      snapshot_->PlanBatch(scenarios_).ValueOrDie();
  ScenarioSet tampered = scenarios_;
  tampered.Add("extra").ValueOrDie().Set("Business", 0.5);
  const VerifyReport report = VerifyPlan(*plan, *snapshot_, &tampered);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasFindingContaining(report, "does not recompute"))
      << report.ToString();
}

TEST_F(VerifyPlanTest, VerifyWithoutScenarioSetSkipsFingerprint) {
  std::shared_ptr<const core::BatchPlan> plan =
      snapshot_->PlanBatch(scenarios_).ValueOrDie();
  EXPECT_TRUE(VerifyPlan(*plan, *snapshot_).ok());
}

TEST_F(VerifyPlanTest, VerifyPlansOptionSharesCacheEntry) {
  // verify_plans is deliberately not part of the plan-cache key: the same
  // triple with only that bit changed must hit the cached plan.
  BatchOptions options;
  bool hit = true;
  snapshot_->PlanBatch(scenarios_, options, &hit).ValueOrDie();
  EXPECT_FALSE(hit);
  options.verify_plans = true;
  std::shared_ptr<const core::BatchPlan> plan =
      snapshot_->PlanBatch(scenarios_, options, &hit).ValueOrDie();
  EXPECT_TRUE(hit);
  EXPECT_TRUE(VerifyPlan(*plan, *snapshot_, &scenarios_).ok());
}

TEST_F(VerifyPlanTest, AssignBatchWithVerifyPlansMatchesWithout) {
  BatchOptions plain;
  BatchOptions verified;
  verified.verify_plans = true;
  core::BatchAssignReport a =
      snapshot_->AssignBatch(scenarios_, plain).ValueOrDie();
  core::BatchAssignReport b =
      snapshot_->AssignBatch(scenarios_, verified).ValueOrDie();
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i].delta.rows;
    const auto& rb = b.reports[i].delta.rows;
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t r = 0; r < ra.size(); ++r) {
      EXPECT_EQ(std::memcmp(&ra[r].full, &rb[r].full, sizeof(double)), 0);
      EXPECT_EQ(
          std::memcmp(&ra[r].compressed, &rb[r].compressed, sizeof(double)),
          0);
    }
  }
}

// The overlay half of a plan is data a cache replays across calls, so each
// way it can rot — stale fingerprint, tables bound against another base,
// dropped table, undersized base — must be caught before execution. The
// corrupt overlays are assembled from the public parts API exactly as an
// external plan store would.

TEST_F(VerifyPlanTest, CorruptedOverlayFingerprintIsDetected) {
  std::shared_ptr<const core::BatchPlan> plan =
      snapshot_->PlanBatch(scenarios_).ValueOrDie();
  auto bad = std::make_shared<core::PlanBaseOverlay>(plan->overlay());
  bad->base_fingerprint.lo ^= 1;
  std::shared_ptr<const core::BatchPlan> tampered =
      core::BatchPlan::FromParts(plan->core(), bad);
  const VerifyReport report = VerifyPlan(*tampered, *snapshot_, &scenarios_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasFindingContaining(report,
                                   "base fingerprint does not recompute"))
      << report.ToString();
}

TEST_F(VerifyPlanTest, OverlayTablesBoundToADifferentBaseAreDetected) {
  BatchOptions options;
  options.sweep = BatchOptions::Sweep::kBlocked;
  std::shared_ptr<const core::BatchPlan> plan =
      snapshot_->PlanBatch(scenarios_, options).ValueOrDie();

  // Bind the block tables against a shifted base, then splice them into an
  // overlay that still claims the original base: structurally perfect, but
  // the value rows no longer rebind from the stored base.
  prov::Valuation other(snapshot_->pool_size());
  for (const core::MetaVar& meta : snapshot_->meta_vars()) {
    other.Set(meta.var, 2.0);
  }
  std::shared_ptr<const core::PlanBaseOverlay> shifted =
      plan->core()->MakeOverlay(other);
  auto bad = std::make_shared<core::PlanBaseOverlay>(plan->overlay());
  bad->block_tables = shifted->block_tables;
  std::shared_ptr<const core::BatchPlan> tampered =
      core::BatchPlan::FromParts(plan->core(), bad);
  const VerifyReport report = VerifyPlan(*tampered, *snapshot_, &scenarios_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasFindingContaining(report, "does not rebind"))
      << report.ToString();
}

TEST_F(VerifyPlanTest, DroppedOverlayBlockTableIsDetected) {
  BatchOptions options;
  options.sweep = BatchOptions::Sweep::kBlocked;
  std::shared_ptr<const core::BatchPlan> plan =
      snapshot_->PlanBatch(scenarios_, options).ValueOrDie();
  auto bad = std::make_shared<core::PlanBaseOverlay>(plan->overlay());
  ASSERT_FALSE(bad->block_tables.empty());
  bad->block_tables.pop_back();
  std::shared_ptr<const core::BatchPlan> tampered =
      core::BatchPlan::FromParts(plan->core(), bad);
  const VerifyReport report = VerifyPlan(*tampered, *snapshot_, &scenarios_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasFindingContaining(report, "block tables"))
      << report.ToString();
}

TEST_F(VerifyPlanTest, UndersizedOverlayBaseIsDetected) {
  std::shared_ptr<const core::BatchPlan> plan =
      snapshot_->PlanBatch(scenarios_).ValueOrDie();
  auto bad = std::make_shared<core::PlanBaseOverlay>(plan->overlay());
  bad->base = prov::Valuation(1);
  std::shared_ptr<const core::BatchPlan> tampered =
      core::BatchPlan::FromParts(plan->core(), bad);
  const VerifyReport report = VerifyPlan(*tampered, *snapshot_, &scenarios_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(HasFindingContaining(report, "base valuation covers"))
      << report.ToString();
}

// --------------------------------------------------------------- session

TEST(VerifySessionTest, LiveSessionWithCachedPlansVerifiesClean) {
  Session session;
  std::shared_ptr<const CompiledSession> snapshot =
      ExampleSnapshot(&session);
  ScenarioSet scenarios = ExampleScenarios();
  for (BatchOptions::Sweep sweep :
       {BatchOptions::Sweep::kBlocked, BatchOptions::Sweep::kSparseDelta}) {
    BatchOptions options;
    options.sweep = sweep;
    snapshot->AssignBatch(scenarios, options).ValueOrDie();
  }
  ASSERT_GE(snapshot->CachedPlanHandles().size(), 2u);
  const VerifyReport report = VerifySession(*snapshot);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// -------------------------------------------------------- bit-flip fuzz

/// Flips bit `bit` of byte `offset`.
void FlipBit(std::string* data, std::size_t offset, unsigned bit) {
  (*data)[offset] = static_cast<char>(
      static_cast<unsigned char>((*data)[offset]) ^ (1u << bit));
}

TEST(SnapshotFuzzTest, EveryRawBitFlipIsRejectedByParse) {
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  const std::string encoded = SerializeSnapshot(MakeSnapshot(*origin));
  ASSERT_TRUE(ParseSnapshot(encoded, "<fuzz>").ok());

  // Any single-bit corruption of the raw artifact breaks the magic, the
  // version, the length, or the payload checksum — ParseSnapshot must
  // reject every one of them before any content is interpreted.
  std::size_t rejected = 0;
  for (std::size_t offset = 0; offset < encoded.size(); ++offset) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      std::string mutated = encoded;
      FlipBit(&mutated, offset, bit);
      if (!ParseSnapshot(mutated, "<fuzz>").ok()) ++rejected;
    }
  }
  EXPECT_EQ(rejected, encoded.size() * 8);
}

/// Rewrites the header's payload-size and checksum fields to match the
/// (possibly mutated) payload — simulating corruption that happened before
/// the artifact was stamped, which the checksum cannot catch.
void RestampHeader(std::string* data) {
  const std::string_view payload(data->data() + 28, data->size() - 28);
  const std::uint64_t size = payload.size();
  const std::uint64_t checksum = util::HashBytes(payload);
  for (int i = 0; i < 8; ++i) {
    (*data)[12 + i] = static_cast<char>(size >> (8 * i));
    (*data)[20 + i] = static_cast<char>(checksum >> (8 * i));
  }
}

TEST(SnapshotFuzzTest, RestampedPayloadCorruptionIsCaughtOrBenign) {
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  const std::string encoded = SerializeSnapshot(MakeSnapshot(*origin));
  const std::size_t payload_size = encoded.size() - 28;

  // Consistency check on the restamp helper: restamping the pristine
  // artifact must be a no-op.
  {
    std::string same = encoded;
    RestampHeader(&same);
    ASSERT_EQ(same, encoded);
  }

  ScenarioSet scenarios = ExampleScenarios();
  std::size_t parse_rejected = 0;
  std::size_t verify_rejected = 0;
  std::size_t benign = 0;

  util::Rng rng(0xC0BAF22DULL);
  const std::size_t kSamples = 1200;
  for (std::size_t s = 0; s < kSamples; ++s) {
    const std::size_t offset =
        28 + static_cast<std::size_t>(rng.NextBelow(payload_size));
    const unsigned bit = static_cast<unsigned>(rng.NextBelow(8));
    std::string mutated = encoded;
    FlipBit(&mutated, offset, bit);
    RestampHeader(&mutated);

    // Stage 1: structural decode. A flipped count/length usually truncates
    // or overruns a field — rejected here.
    util::Result<SnapshotPackage> package = ParseSnapshot(mutated, "<fuzz>");
    if (!package.ok()) {
      ++parse_rejected;
      continue;
    }

    // Stage 2: the static verifier and the serving gate. A decodable but
    // inconsistent package must be refused by FromSnapshot (which runs
    // VerifySnapshot), never built.
    const VerifyReport report = VerifySnapshot(*package);
    util::Result<std::shared_ptr<const CompiledSession>> replica =
        CompiledSession::FromSnapshot(*package);
    EXPECT_EQ(report.ok(), replica.ok())
        << "verifier and FromSnapshot disagree at offset " << offset
        << " bit " << bit << "\n"
        << report.ToString();
    if (!replica.ok()) {
      ++verify_rejected;
      continue;
    }

    // Stage 3: the corruption passed every gate, so it must be *benign*:
    // executing the replica (single and batched assignment) must complete
    // without fault — under the ASan/UBSan CI job this asserts no memory
    // error, no NaN poisoning (defaults and coefficients are verified
    // finite), and no crash. Values may legitimately differ from the
    // origin: a checksum-consistent value flip is indistinguishable from
    // an artifact that was authored that way.
    ++benign;
    core::AssignReport assign = (*replica)->Assign(1).ValueOrDie();
    (void)assign;
    // A flipped pool-name byte renames a variable, so scenario compilation
    // may cleanly reject an "unknown variable" — a descriptive Status, not
    // a fault. When the batch does run it must cover every scenario.
    util::Result<core::BatchAssignReport> batch =
        (*replica)->AssignBatch(scenarios);
    if (batch.ok()) {
      EXPECT_EQ(batch->reports.size(), scenarios.size());
    } else {
      EXPECT_NE(batch.status().message().find("unknown variable"),
                std::string::npos)
          << batch.status().ToString();
    }
  }

  // The corpus must exercise all three outcomes, and every mutation is
  // accounted for.
  EXPECT_EQ(parse_rejected + verify_rejected + benign, kSamples);
  EXPECT_GT(parse_rejected, 0u);
  EXPECT_GT(verify_rejected, 0u);
  EXPECT_GT(benign, 0u);
}

}  // namespace
}  // namespace cobra::verify
