// Tests for core/metrics: assignment timing and result deltas.

#include "core/metrics.h"

#include <gtest/gtest.h>

#include "prov/parser.h"

namespace cobra::core {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  prov::PolySet MakeSet(std::size_t monos_per_poly) {
    prov::PolySet set;
    for (std::size_t p = 0; p < 20; ++p) {
      std::vector<prov::Term> terms;
      for (std::size_t i = 0; i < monos_per_poly; ++i) {
        terms.push_back({prov::Monomial::Of(static_cast<prov::VarId>(i % 16),
                                            static_cast<prov::VarId>(16 + i / 16)),
                         static_cast<double>(i + 1)});
      }
      set.Add("g" + std::to_string(p),
              prov::Polynomial::FromTerms(std::move(terms)));
    }
    return set;
  }
};

TEST_F(MetricsTest, SpeedupPercentFormula) {
  AssignmentTiming timing;
  timing.full_seconds = 2.0;
  timing.compressed_seconds = 1.0;
  EXPECT_DOUBLE_EQ(timing.SpeedupPercent(), 50.0);
  timing.compressed_seconds = 2.0;
  EXPECT_DOUBLE_EQ(timing.SpeedupPercent(), 0.0);
  timing.full_seconds = 0.0;
  EXPECT_DOUBLE_EQ(timing.SpeedupPercent(), 0.0);  // guarded
}

TEST_F(MetricsTest, MeasureAssignmentOrdersBySize) {
  prov::PolySet full = MakeSet(512);
  prov::PolySet small = MakeSet(32);
  prov::Valuation valuation(std::size_t{64});
  AssignmentTiming timing =
      MeasureAssignment(full, small, valuation, valuation, 10);
  EXPECT_GT(timing.full_seconds, 0.0);
  EXPECT_GT(timing.compressed_seconds, 0.0);
  // 16x fewer monomials must be measurably faster.
  EXPECT_LT(timing.compressed_seconds, timing.full_seconds);
  EXPECT_GT(timing.SpeedupPercent(), 0.0);
}

TEST_F(MetricsTest, CompareResultsComputesErrors) {
  prov::VarPool pool;
  prov::PolySet a, b;
  a.Add("g0", prov::ParsePolynomial("10", &pool).ValueOrDie());
  a.Add("g1", prov::ParsePolynomial("0", &pool).ValueOrDie());
  b.Add("g0", prov::ParsePolynomial("8", &pool).ValueOrDie());
  b.Add("g1", prov::ParsePolynomial("0", &pool).ValueOrDie());
  prov::Valuation v(pool);
  ResultDelta delta = CompareResults(a, b, v, v);
  ASSERT_EQ(delta.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(delta.rows[0].abs_error, 2.0);
  EXPECT_DOUBLE_EQ(delta.rows[0].rel_error, 0.2);
  EXPECT_DOUBLE_EQ(delta.rows[1].abs_error, 0.0);
  EXPECT_DOUBLE_EQ(delta.rows[1].rel_error, 0.0);
  EXPECT_DOUBLE_EQ(delta.max_abs_error, 2.0);
  EXPECT_DOUBLE_EQ(delta.max_rel_error, 0.2);
  EXPECT_DOUBLE_EQ(delta.mean_rel_error, 0.1);
}

TEST_F(MetricsTest, CompareResultsZeroFullNonzeroCompressed) {
  prov::VarPool pool;
  prov::PolySet a, b;
  a.Add("g0", prov::Polynomial());
  b.Add("g0", prov::ParsePolynomial("1", &pool).ValueOrDie());
  prov::Valuation v(pool);
  ResultDelta delta = CompareResults(a, b, v, v);
  // full == 0 with nonzero error counts as 100% relative error.
  EXPECT_DOUBLE_EQ(delta.rows[0].rel_error, 1.0);
}

TEST_F(MetricsTest, ResultDeltaToStringTruncates) {
  prov::VarPool pool;
  prov::PolySet a, b;
  for (int i = 0; i < 15; ++i) {
    a.Add("g" + std::to_string(i), prov::Polynomial::Constant(1.0));
    b.Add("g" + std::to_string(i), prov::Polynomial::Constant(1.0));
  }
  prov::Valuation v(pool);
  ResultDelta delta = CompareResults(a, b, v, v);
  std::string text = delta.ToString(5);
  EXPECT_NE(text.find("10 more groups"), std::string::npos);
  EXPECT_NE(text.find("errors:"), std::string::npos);
}

}  // namespace
}  // namespace cobra::core
