// Tests for the semiring framework: laws per instance, homomorphic images
// of N[X], and the aggregate semimodule.

#include <gtest/gtest.h>

#include <cmath>

#include "prov/parser.h"
#include "semiring/homomorphism.h"
#include "semiring/instances.h"
#include "semiring/semimodule.h"
#include "util/rng.h"

namespace cobra::semiring {
namespace {

// ---- Semiring laws, checked generically per instance ----

template <typename S>
void ExpectSemiringLaws(const std::vector<typename S::Value>& samples) {
  using V = typename S::Value;
  const V zero = S::Zero();
  const V one = S::One();
  for (const V& a : samples) {
    EXPECT_TRUE(S::Equal(S::Plus(a, zero), a));
    EXPECT_TRUE(S::Equal(S::Times(a, one), a));
    EXPECT_TRUE(S::Equal(S::Times(a, zero), zero));
    for (const V& b : samples) {
      EXPECT_TRUE(S::Equal(S::Plus(a, b), S::Plus(b, a)));
      EXPECT_TRUE(S::Equal(S::Times(a, b), S::Times(b, a)));
      for (const V& c : samples) {
        EXPECT_TRUE(
            S::Equal(S::Plus(S::Plus(a, b), c), S::Plus(a, S::Plus(b, c))));
        EXPECT_TRUE(S::Equal(S::Times(S::Times(a, b), c),
                             S::Times(a, S::Times(b, c))));
        EXPECT_TRUE(S::Equal(S::Times(a, S::Plus(b, c)),
                             S::Plus(S::Times(a, b), S::Times(a, c))));
      }
    }
  }
}

TEST(SemiringLaws, Boolean) {
  ExpectSemiringLaws<BoolSemiring>({false, true});
}

TEST(SemiringLaws, Counting) {
  ExpectSemiringLaws<CountingSemiring>({0, 1, 2, 3, 7});
}

TEST(SemiringLaws, Tropical) {
  ExpectSemiringLaws<TropicalSemiring>(
      {TropicalSemiring::Zero(), 0.0, 1.0, 2.5, 10.0});
}

TEST(SemiringLaws, Why) {
  ExpectSemiringLaws<WhySemiring>({WhySemiring::Zero(), WhySemiring::One(),
                                   WhySemiring::Var(0), WhySemiring::Var(1),
                                   WhySemiring::Plus(WhySemiring::Var(0),
                                                     WhySemiring::Var(1))});
}

TEST(SemiringLaws, PolynomialNX) {
  prov::VarPool pool;
  auto parse = [&pool](const char* text) {
    return prov::ParsePolynomial(text, &pool).ValueOrDie();
  };
  ExpectSemiringLaws<PolySemiring>(
      {PolySemiring::Zero(), PolySemiring::One(), parse("x"), parse("x + y"),
       parse("2 * x * y + 3")});
}

// ---- Homomorphisms out of N[X] ----

class HomTest : public ::testing::Test {
 protected:
  prov::Polynomial Parse(const char* text) {
    return prov::ParsePolynomial(text, &pool_).ValueOrDie();
  }
  prov::VarPool pool_;
  prov::VarId x_ = pool_.Intern("x");
  prov::VarId y_ = pool_.Intern("y");
  prov::VarId z_ = pool_.Intern("z");
};

TEST_F(HomTest, BooleanImage) {
  prov::Polynomial p = Parse("x * y + z");
  EXPECT_TRUE(EvalBool(p, {true, true, false}));
  EXPECT_TRUE(EvalBool(p, {false, false, true}));
  EXPECT_FALSE(EvalBool(p, {true, false, false}));
  EXPECT_FALSE(EvalBool(Parse("0"), {true, true, true}));
}

TEST_F(HomTest, CountingImage) {
  // 2*x*y + z with x=2, y=3, z=5 -> 2*6 + 5 = 17.
  EXPECT_EQ(EvalCounting(Parse("2 * x * y + z"), {2, 3, 5}), 17);
  // Deleting a tuple (count 0) removes its monomials.
  EXPECT_EQ(EvalCounting(Parse("2 * x * y + z"), {0, 3, 5}), 5);
}

TEST_F(HomTest, TropicalImageTakesMinOverMonomials) {
  // min(x+y, z) with costs x=1, y=2, z=5 -> 3.
  EXPECT_DOUBLE_EQ(EvalTropical(Parse("x * y + z"), {1, 2, 5}), 3.0);
  EXPECT_DOUBLE_EQ(EvalTropical(Parse("x^2"), {1.5, 0, 0}), 3.0);
  EXPECT_TRUE(std::isinf(EvalTropical(prov::Polynomial(), {})));
}

TEST_F(HomTest, WhyImageDropsCoefficientsAndExponents) {
  WhySemiring::Value w = EvalWhy(Parse("3 * x^2 * y + 2 * z"));
  WhySemiring::Value expected = {{x_, y_}, {z_}};
  EXPECT_EQ(w, expected);
}

TEST_F(HomTest, HomomorphismCommutesWithPlusAndTimes) {
  // A valuation-induced hom h: N[X] -> R must satisfy
  // h(a+b) = h(a)+h(b) and h(a*b) = h(a)*h(b).
  util::Rng rng(5);
  prov::Valuation v(pool_);
  v.Set(x_, 2.0);
  v.Set(y_, 0.5);
  v.Set(z_, 3.0);
  prov::Polynomial a = Parse("2 * x * y + z");
  prov::Polynomial b = Parse("x - 4 * z^2");
  EXPECT_NEAR(a.Plus(b).Eval(v), a.Eval(v) + b.Eval(v), 1e-9);
  EXPECT_NEAR(a.TimesPoly(b).Eval(v), a.Eval(v) * b.Eval(v), 1e-9);
}

// ---- Aggregate semimodule (Amsterdamer-Deutch-Tannen) ----

class SemimoduleTest : public HomTest {};

TEST_F(SemimoduleTest, TensorNormalizesToScaledPolynomial) {
  AggregateValue t = AggregateValue::Tensor(Parse("x * y"), 208.8);
  EXPECT_EQ(t.AsPolynomial(), Parse("208.8 * x * y"));
}

TEST_F(SemimoduleTest, PlusConcatenatesFormalSum) {
  AggregateValue sum = AggregateValue::Tensor(Parse("x"), 2.0)
                           .Plus(AggregateValue::Tensor(Parse("y"), 3.0))
                           .Plus(AggregateValue::Tensor(Parse("x"), 4.0));
  EXPECT_EQ(sum.AsPolynomial(), Parse("6 * x + 3 * y"));
}

TEST_F(SemimoduleTest, ScalarActionDistributes) {
  AggregateValue sum = AggregateValue::Tensor(Parse("x"), 2.0)
                           .Plus(AggregateValue::Tensor(Parse("y"), 3.0));
  AggregateValue scaled = sum.ScalarTimes(Parse("z"));
  EXPECT_EQ(scaled.AsPolynomial(), Parse("2 * x * z + 3 * y * z"));
}

TEST_F(SemimoduleTest, SemimoduleLaws) {
  // (k1 + k2) * m == k1*m + k2*m ; k*(m1 + m2) == k*m1 + k*m2.
  prov::Polynomial k1 = Parse("x");
  prov::Polynomial k2 = Parse("y + 1");
  AggregateValue m1 = AggregateValue::Tensor(Parse("z"), 2.0);
  AggregateValue m2 = AggregateValue::Tensor(Parse("x"), -1.0);
  EXPECT_EQ(m1.ScalarTimes(k1.Plus(k2)).AsPolynomial(),
            m1.ScalarTimes(k1).Plus(m1.ScalarTimes(k2)).AsPolynomial());
  EXPECT_EQ(m1.Plus(m2).ScalarTimes(k1).AsPolynomial(),
            m1.ScalarTimes(k1).Plus(m2.ScalarTimes(k1)).AsPolynomial());
}

TEST_F(SemimoduleTest, EvalCommutesWithValuation) {
  // Evaluating the aggregate polynomial equals re-aggregating scaled values:
  // SUM over tuples of (annotation value * tuple value).
  prov::Valuation v(pool_);
  v.Set(x_, 0.8);
  v.Set(y_, 1.1);
  AggregateValue agg = AggregateValue::Tensor(Parse("x"), 100.0)
                           .Plus(AggregateValue::Tensor(Parse("y"), 50.0));
  EXPECT_NEAR(agg.Eval(v), 0.8 * 100.0 + 1.1 * 50.0, 1e-9);
}

TEST_F(SemimoduleTest, EmptyAggregateIsZero) {
  AggregateValue empty;
  EXPECT_TRUE(empty.AsPolynomial().IsZero());
  prov::Valuation v(pool_);
  EXPECT_DOUBLE_EQ(empty.Eval(v), 0.0);
}

}  // namespace
}  // namespace cobra::semiring
