// Tests for Polynomial::PartialEval — scenario specialization.

#include <gtest/gtest.h>

#include "prov/parser.h"
#include "prov/polynomial.h"
#include "prov/valuation.h"
#include "util/rng.h"

namespace cobra::prov {
namespace {

class PartialEvalTest : public ::testing::Test {
 protected:
  Polynomial Parse(const char* text) {
    return ParsePolynomial(text, &pool_).ValueOrDie();
  }

  VarPool pool_;
  VarId x_ = pool_.Intern("x");
  VarId y_ = pool_.Intern("y");
  VarId z_ = pool_.Intern("z");
};

TEST_F(PartialEvalTest, FixingOneVariableFoldsIt) {
  Valuation v(pool_);
  v.Set(x_, 2.0);
  std::vector<bool> fixed{true, false, false};
  // 3xy + x^2 + y with x=2 -> 6y + 4 + y = 7y + 4.
  Polynomial specialized =
      Parse("3 * x * y + x^2 + y").PartialEval(v, fixed);
  EXPECT_EQ(specialized, Parse("7 * y + 4"));
  // x must no longer appear.
  for (VarId var : specialized.Variables()) EXPECT_NE(var, x_);
}

TEST_F(PartialEvalTest, NoFixedVariablesIsIdentity) {
  Valuation v(pool_);
  v.Set(x_, 5.0);
  Polynomial p = Parse("2 * x * y + z");
  EXPECT_EQ(p.PartialEval(v, {false, false, false}), p);
  EXPECT_EQ(p.PartialEval(v, {}), p);  // short mask = nothing fixed
}

TEST_F(PartialEvalTest, AllFixedGivesConstant) {
  Valuation v(pool_);
  v.Set(x_, 2.0);
  v.Set(y_, 3.0);
  v.Set(z_, 0.5);
  Polynomial p = Parse("2 * x * y + z - 1");
  Polynomial c = p.PartialEval(v, {true, true, true});
  EXPECT_EQ(c, Polynomial::Constant(p.Eval(v)));
}

TEST_F(PartialEvalTest, FixingToZeroDeletesMonomials) {
  Valuation v(pool_);
  v.Set(x_, 0.0);
  Polynomial p = Parse("5 * x * y + 2 * z").PartialEval(v, {true, false, false});
  EXPECT_EQ(p, Parse("2 * z"));
}

TEST_F(PartialEvalTest, CollapsedMonomialsMerge) {
  Valuation v(pool_);
  v.Set(x_, 2.0);
  // 3xy + 4y: fixing x merges into (6+4)y.
  Polynomial p = Parse("3 * x * y + 4 * y").PartialEval(v, {true, false, false});
  EXPECT_EQ(p, Parse("10 * y"));
  EXPECT_EQ(p.NumMonomials(), 1u);
}

/// Property: PartialEval then full Eval == direct Eval, any split.
class PartialEvalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartialEvalProperty, ComposesWithFullEvaluation) {
  util::Rng rng(GetParam());
  VarPool pool;
  constexpr std::size_t kVars = 5;
  for (std::size_t i = 0; i < kVars; ++i) pool.Intern("v" + std::to_string(i));

  std::vector<Term> terms;
  std::size_t n = 1 + rng.NextBelow(10);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<VarPower> factors;
    std::size_t k = rng.NextBelow(4);
    for (std::size_t j = 0; j < k; ++j) {
      factors.push_back({static_cast<VarId>(rng.NextBelow(kVars)),
                         static_cast<std::uint32_t>(1 + rng.NextBelow(3))});
    }
    terms.push_back({Monomial::FromFactors(std::move(factors)),
                     rng.NextDoubleInRange(-5, 5)});
  }
  Polynomial p = Polynomial::FromTerms(std::move(terms));

  Valuation valuation(pool);
  std::vector<bool> fixed(kVars);
  for (std::size_t i = 0; i < kVars; ++i) {
    valuation.Set(static_cast<VarId>(i), rng.NextDoubleInRange(0.25, 4.0));
    fixed[i] = rng.NextBool(0.5);
  }
  Polynomial specialized = p.PartialEval(valuation, fixed);
  EXPECT_NEAR(specialized.Eval(valuation), p.Eval(valuation),
              1e-9 * (1.0 + std::abs(p.Eval(valuation))));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartialEvalProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace cobra::prov
