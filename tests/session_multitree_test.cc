// Tests for the Session's multi-tree mode (plan tree + quarter tree through
// the full façade, the Section 4 scenario).

#include <gtest/gtest.h>

#include "core/session.h"
#include "data/example_db.h"
#include "data/telephony.h"
#include "prov/parser.h"

namespace cobra::core {
namespace {

class SessionMultiTreeTest : public ::testing::Test {
 protected:
  /// Loads P1/P2-style provenance over 4 plans x 6 months and installs the
  /// plan tree plus a 2-quarter month tree.
  void Load(Session* session) {
    std::string text = "P = ";
    int c = 1;
    for (const char* plan : {"b1", "b2", "e", "p1"}) {
      for (int m = 1; m <= 6; ++m) {
        if (c > 1) text += " + ";
        text += std::to_string(c++) + " * " + plan + " * m" +
                std::to_string(m);
      }
    }
    text += "\n";
    session->LoadPolynomialsText(text).CheckOK();
    std::vector<AbstractionTree> trees;
    trees.push_back(
        ParseTree(data::kFigure2TreeText, session->mutable_pool())
            .ValueOrDie());
    trees.push_back(
        ParseTree(data::MonthQuarterTreeText(6), session->mutable_pool())
            .ValueOrDie());
    session->SetTrees(std::move(trees)).CheckOK();
  }
};

TEST_F(SessionMultiTreeTest, CompressUsesMultiTreeGreedy) {
  Session session;
  Load(&session);
  session.SetBound(8);
  CompressionReport report = session.Compress().ValueOrDie();
  EXPECT_EQ(report.algorithm, Algorithm::kMultiTreeGreedy);
  EXPECT_TRUE(report.feasible);
  EXPECT_LE(report.compressed_size, 8u);
  EXPECT_EQ(report.original_size, 24u);
  // The description shows both cuts.
  EXPECT_NE(report.cut_description.find(" x "), std::string::npos);
}

TEST_F(SessionMultiTreeTest, AssignWorksAcrossBothTrees) {
  Session session;
  Load(&session);
  session.SetBound(4);
  session.Compress().ValueOrDie();
  // Whatever the cuts are, uniform group scenarios stay exact.
  for (const MetaVar& mv : session.meta_vars()) {
    session.SetMetaValue(mv.name, 1.05).CheckOK();
  }
  AssignReport assign = session.Assign().ValueOrDie();
  EXPECT_NEAR(assign.delta.max_abs_error, 0.0, 1e-9);
  EXPECT_LE(assign.compressed_size, 4u);
}

TEST_F(SessionMultiTreeTest, SetTreesRejectsEmptyAndInvalid) {
  Session session;
  EXPECT_FALSE(session.SetTrees({}).ok());
}

TEST_F(SessionMultiTreeTest, SingleTreeViaSetTreesMatchesSetTree) {
  // SetTrees with one tree behaves like single-tree mode via the DP.
  Session a, b;
  a.LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
  b.LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
  a.SetTreeText(data::kFigure2TreeText).CheckOK();
  std::vector<AbstractionTree> trees;
  trees.push_back(
      ParseTree(data::kFigure2TreeText, b.mutable_pool()).ValueOrDie());
  b.SetTrees(std::move(trees)).CheckOK();
  a.SetBound(8);
  b.SetBound(8);
  CompressionReport ra = a.Compress().ValueOrDie();
  CompressionReport rb = b.Compress().ValueOrDie();
  EXPECT_EQ(ra.compressed_size, rb.compressed_size);
  EXPECT_EQ(ra.algorithm, Algorithm::kOptimalDp);
  EXPECT_EQ(rb.algorithm, Algorithm::kOptimalDp);
}

TEST_F(SessionMultiTreeTest, QuarterScenarioThroughSession) {
  // Collapse months to quarters only (generous bound on the plan side):
  // check the quarter meta-variable exists and drives the result.
  Session session;
  Load(&session);
  session.SetBound(12);  // e.g. 4 plans kept x ... the greedy decides
  session.Compress().ValueOrDie();
  AssignReport before = session.Assign().ValueOrDie();
  // Scale whichever meta variables exist by 0.5 on the month side.
  bool scaled = false;
  for (const char* name : {"q1", "Months"}) {
    if (session.pool().Contains(name) &&
        session.SetMetaValue(name, 0.5).ok()) {
      scaled = true;
      break;
    }
  }
  if (scaled) {
    AssignReport after = session.Assign().ValueOrDie();
    EXPECT_LT(after.delta.rows[0].compressed,
              before.delta.rows[0].compressed);
    EXPECT_NEAR(after.delta.max_abs_error, 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace cobra::core
