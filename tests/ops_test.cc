// Tests for the annotated relational operators: selection, projection,
// joins, union, distinct, order by, limit — including the semiring
// annotation rules (join multiplies, distinct sums).

#include "rel/ops.h"

#include <gtest/gtest.h>

#include "prov/parser.h"
#include "rel/database.h"
#include "rel/instrument.h"

namespace cobra::rel {
namespace {

/// Fixture: a tiny database with instrumented tuples.
class OpsTest : public ::testing::Test {
 protected:
  OpsTest() {
    Table left(Schema("L", {{"K", Type::kInt64}, {"V", Type::kString}}));
    left.AppendRow({Value(std::int64_t{1}), Value("a")});
    left.AppendRow({Value(std::int64_t{2}), Value("b")});
    left.AppendRow({Value(std::int64_t{2}), Value("c")});
    db_.AddTable("L", std::move(left)).CheckOK();

    Table right(Schema("R", {{"K", Type::kInt64}, {"W", Type::kDouble}}));
    right.AppendRow({Value(std::int64_t{2}), Value(10.0)});
    right.AppendRow({Value(std::int64_t{3}), Value(30.0)});
    right.AppendRow({Value(std::int64_t{2}), Value(20.0)});
    db_.AddTable("R", std::move(right)).CheckOK();

    // Tuple-level provenance: L rows -> l0,l1,l2; R rows -> r0,r1,r2.
    InstrumentTuples(&db_, "L", "l").CheckOK();
    InstrumentTuples(&db_, "R", "r").CheckOK();
  }

  prov::Polynomial Parse(const char* text) {
    return prov::ParsePolynomial(text, db_.mutable_var_pool()).ValueOrDie();
  }

  const AnnotatedTable& L() { return *db_.GetTable("L").ValueOrDie(); }
  const AnnotatedTable& R() { return *db_.GetTable("R").ValueOrDie(); }

  Database db_;
};

TEST_F(OpsTest, SelectFiltersAndKeepsAnnotations) {
  AnnotatedTable out =
      Select(L(), Expr::Eq(Expr::Column("K"), Expr::Int(2))).ValueOrDie();
  ASSERT_EQ(out.NumRows(), 2u);
  EXPECT_EQ(out.table.Get(0, 1).AsString(), "b");
  EXPECT_EQ(out.Annotation(0), Parse("l1"));
  EXPECT_EQ(out.Annotation(1), Parse("l2"));
}

TEST_F(OpsTest, SelectEmptyResult) {
  AnnotatedTable out =
      Select(L(), Expr::Eq(Expr::Column("K"), Expr::Int(99))).ValueOrDie();
  EXPECT_EQ(out.NumRows(), 0u);
}

TEST_F(OpsTest, SelectRejectsUnknownColumn) {
  EXPECT_FALSE(Select(L(), Expr::Eq(Expr::Column("Zzz"), Expr::Int(1))).ok());
}

TEST_F(OpsTest, ProjectComputesExpressions) {
  AnnotatedTable out =
      Project(L(), {Expr::Mul(Expr::Column("K"), Expr::Int(10))}, {"K10"})
          .ValueOrDie();
  ASSERT_EQ(out.NumRows(), 3u);
  EXPECT_EQ(out.table.Get(2, 0).AsInt64(), 20);
  EXPECT_EQ(out.schema().QualifiedName(0), "K10");
  EXPECT_EQ(out.Annotation(1), Parse("l1"));  // annotations pass through
}

TEST_F(OpsTest, HashJoinMultipliesAnnotations) {
  AnnotatedTable out = HashJoin(L(), R(), {"L.K"}, {"R.K"}).ValueOrDie();
  // K=2 on both sides: 2 left rows x 2 right rows = 4 matches.
  ASSERT_EQ(out.NumRows(), 4u);
  EXPECT_EQ(out.schema().size(), 4u);
  // Every output annotation must be a product l_i * r_j with K=2 rows.
  for (std::size_t i = 0; i < out.NumRows(); ++i) {
    EXPECT_EQ(out.table.Get(i, 0).AsInt64(), 2);
    EXPECT_EQ(out.table.Get(i, 2).AsInt64(), 2);
    EXPECT_EQ(out.Annotation(i).NumMonomials(), 1u);
    EXPECT_EQ(out.Annotation(i).Degree(), 2u);
  }
}

TEST_F(OpsTest, HashJoinFindsSpecificPair) {
  AnnotatedTable out = HashJoin(L(), R(), {"L.K"}, {"R.K"}).ValueOrDie();
  bool found = false;
  for (std::size_t i = 0; i < out.NumRows(); ++i) {
    if (out.table.Get(i, 1).AsString() == "b" &&
        out.table.Get(i, 3).AsDouble() == 20.0) {
      EXPECT_EQ(out.Annotation(i), Parse("l1 * r2"));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(OpsTest, HashJoinRejectsBadKeys) {
  EXPECT_FALSE(HashJoin(L(), R(), {"L.K"}, {}).ok());
  EXPECT_FALSE(HashJoin(L(), R(), {"L.K"}, {"R.Missing"}).ok());
  EXPECT_FALSE(HashJoin(L(), R(), {"L.V"}, {"R.K"}).ok());  // string vs int
}

TEST_F(OpsTest, NestedLoopJoinMatchesHashJoinOnEquiPredicate) {
  AnnotatedTable hash = HashJoin(L(), R(), {"L.K"}, {"R.K"}).ValueOrDie();
  AnnotatedTable nested =
      NestedLoopJoin(L(), R(),
                     Expr::Eq(Expr::Column("L.K"), Expr::Column("R.K")))
          .ValueOrDie();
  EXPECT_EQ(nested.NumRows(), hash.NumRows());
}

TEST_F(OpsTest, NestedLoopJoinThetaPredicate) {
  AnnotatedTable out =
      NestedLoopJoin(L(), R(),
                     Expr::Lt(Expr::Column("L.K"), Expr::Column("R.K")))
          .ValueOrDie();
  // L.K in {1,2,2}, R.K in {2,3,2}: pairs with L.K < R.K:
  // 1<2, 1<3, 1<2, 2<3, 2<3 -> 5 rows.
  EXPECT_EQ(out.NumRows(), 5u);
}

TEST_F(OpsTest, CrossJoinViaAlwaysTruePredicate) {
  AnnotatedTable out = NestedLoopJoin(L(), R(), Expr::Int(1)).ValueOrDie();
  EXPECT_EQ(out.NumRows(), 9u);
}

TEST_F(OpsTest, UnionConcatenates) {
  AnnotatedTable out = Union(L(), L()).ValueOrDie();
  EXPECT_EQ(out.NumRows(), 6u);
  EXPECT_EQ(out.Annotation(3), Parse("l0"));
}

TEST_F(OpsTest, UnionRejectsSchemaMismatch) {
  EXPECT_FALSE(Union(L(), R()).ok());
}

TEST_F(OpsTest, DistinctSumsAnnotations) {
  // Project L to K only: rows K=2 appear twice with annotations l1, l2.
  AnnotatedTable projected =
      Project(L(), {Expr::Column("K")}, {"K"}).ValueOrDie();
  AnnotatedTable out = Distinct(projected);
  ASSERT_EQ(out.NumRows(), 2u);
  // Row with K=2 must carry l1 + l2.
  for (std::size_t i = 0; i < out.NumRows(); ++i) {
    if (out.table.Get(i, 0).AsInt64() == 2) {
      EXPECT_EQ(out.Annotation(i), Parse("l1 + l2"));
    } else {
      EXPECT_EQ(out.Annotation(i), Parse("l0"));
    }
  }
}

TEST_F(OpsTest, OrderBySortsAndKeepsAnnotationAlignment) {
  AnnotatedTable out =
      OrderBy(R(), {{Expr::Column("W"), /*descending=*/true}}).ValueOrDie();
  ASSERT_EQ(out.NumRows(), 3u);
  EXPECT_DOUBLE_EQ(out.table.Get(0, 1).AsDouble(), 30.0);
  EXPECT_DOUBLE_EQ(out.table.Get(2, 1).AsDouble(), 10.0);
  EXPECT_EQ(out.Annotation(0), Parse("r1"));
  EXPECT_EQ(out.Annotation(2), Parse("r0"));
}

TEST_F(OpsTest, OrderByIsStable) {
  AnnotatedTable out =
      OrderBy(L(), {{Expr::Column("K"), /*descending=*/false}}).ValueOrDie();
  // K=2 rows keep original relative order b, c.
  EXPECT_EQ(out.table.Get(1, 1).AsString(), "b");
  EXPECT_EQ(out.table.Get(2, 1).AsString(), "c");
}

TEST_F(OpsTest, LimitTruncates) {
  AnnotatedTable out = Limit(L(), 2);
  EXPECT_EQ(out.NumRows(), 2u);
  EXPECT_EQ(Limit(L(), 100).NumRows(), 3u);
  EXPECT_EQ(Limit(L(), 0).NumRows(), 0u);
}

TEST_F(OpsTest, InstrumentByColumnsAddsValueDerivedVars) {
  Database db;
  Table t(Schema("T", {{"Mo", Type::kInt64}}));
  t.AppendRow({Value(std::int64_t{1})});
  t.AppendRow({Value(std::int64_t{3})});
  db.AddTable("T", std::move(t)).CheckOK();
  InstrumentByColumns(&db, "T", {{"Mo", "m"}}).CheckOK();
  const AnnotatedTable& at = *db.GetTable("T").ValueOrDie();
  EXPECT_EQ(at.Annotation(0),
            prov::ParsePolynomial("m1", db.mutable_var_pool()).ValueOrDie());
  EXPECT_EQ(at.Annotation(1),
            prov::ParsePolynomial("m3", db.mutable_var_pool()).ValueOrDie());
}

TEST_F(OpsTest, InstrumentUnknownTableFails) {
  EXPECT_FALSE(InstrumentTuples(&db_, "Nope", "x").ok());
  EXPECT_FALSE(InstrumentByColumns(&db_, "L", {{"Nope", "x"}}).ok());
}

}  // namespace
}  // namespace cobra::rel
