// Tests for the Compress driver and the COBRA Session façade (Figure 4
// architecture: load -> compress -> assign -> results).

#include "core/session.h"

#include <gtest/gtest.h>

#include "data/example_db.h"
#include "prov/parser.h"

namespace cobra::core {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void Load(Session* session) {
    session->LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
    session->SetTreeText(data::kFigure2TreeText).CheckOK();
  }
};

TEST_F(SessionTest, CompressReportsSizesAndVariables) {
  Session session;
  Load(&session);
  session.SetBound(10);
  CompressionReport report = session.Compress().ValueOrDie();
  EXPECT_TRUE(report.feasible);
  EXPECT_EQ(report.original_size, 14u);
  EXPECT_LE(report.compressed_size, 10u);
  EXPECT_EQ(report.original_variables, 9u);
  EXPECT_GT(report.compressed_variables, 0u);
  EXPECT_LT(report.compression_ratio, 1.0);
  EXPECT_FALSE(report.cut_description.empty());
  EXPECT_TRUE(session.IsCompressed());
}

TEST_F(SessionTest, PreconditionsEnforced) {
  Session session;
  EXPECT_FALSE(session.Compress().ok());  // nothing loaded
  session.LoadPolynomialsText("P = x + y\n").CheckOK();
  EXPECT_FALSE(session.Compress().ok());  // no tree
  EXPECT_FALSE(session.SetMetaValue("x", 1.0).ok());  // not compressed
  EXPECT_FALSE(session.Assign().ok());
}

TEST_F(SessionTest, DefaultMetaValuesAreLeafAverages) {
  Session session;
  Load(&session);
  session.SetBaseValue("b1", 2.0).CheckOK();
  session.SetBaseValue("b2", 4.0).CheckOK();
  session.SetBound(4);  // forces the {Plans} root cut
  session.Compress().ValueOrDie();
  ASSERT_EQ(session.meta_vars().size(), 1u);
  EXPECT_EQ(session.meta_vars()[0].name, "Plans");
  // Average over 11 leaves: (2 + 4 + 9*1)/11.
  double expected = (2.0 + 4.0 + 9.0) / 11.0;
  EXPECT_NEAR(
      session.meta_valuation().Get(session.meta_vars()[0].var), expected,
      1e-12);
}

TEST_F(SessionTest, AssignComparesFullAndCompressed) {
  Session session;
  Load(&session);
  session.SetBound(10);
  session.Compress().ValueOrDie();
  session.SetMetaValue("m3", 0.8).CheckOK();
  AssignReport report = session.Assign().ValueOrDie();
  ASSERT_EQ(report.delta.rows.size(), 2u);
  // Expanded semantics: full and compressed agree exactly.
  EXPECT_NEAR(report.delta.max_abs_error, 0.0, 1e-9);
  EXPECT_EQ(report.full_size, 14u);
  EXPECT_LE(report.compressed_size, 10u);
  EXPECT_GT(report.timing.full_seconds, 0.0);
  EXPECT_GT(report.timing.compressed_seconds, 0.0);
  EXPECT_FALSE(report.ToString().empty());
}

TEST_F(SessionTest, AssignReflectsScenarioValues) {
  Session session;
  Load(&session);
  session.SetBound(14);
  session.Compress().ValueOrDie();
  // Neutral scenario: results equal the original answers.
  AssignReport neutral = session.Assign().ValueOrDie();
  EXPECT_NEAR(neutral.delta.rows[0].full, 905.25, 1e-9);
  EXPECT_NEAR(neutral.delta.rows[1].full, 437.45, 1e-9);
  // March -20%: month-3 share drops by 20%.
  session.SetMetaValue("m3", 0.8).CheckOK();
  AssignReport scenario = session.Assign().ValueOrDie();
  double expected_p1 = 905.25 - 0.2 * (240 + 114.45 + 72.5 + 24.2);
  EXPECT_NEAR(scenario.delta.rows[0].full, expected_p1, 1e-9);
}

TEST_F(SessionTest, AssignAgainstBaseMeasuresInformationLoss) {
  Session session;
  Load(&session);
  // Non-uniform base values: compression to the root loses granularity.
  session.SetBaseValue("b1", 2.0).CheckOK();
  session.SetBound(4);
  session.Compress().ValueOrDie();
  AssignReport report = session.AssignAgainstBase().ValueOrDie();
  // Full side uses b1=2, compressed uses the averaged meta value — they
  // must now disagree (loss), unlike Assign().
  EXPECT_GT(report.delta.max_abs_error, 0.0);
}

TEST_F(SessionTest, InfeasibleBoundSurfacesInReport) {
  Session session;
  Load(&session);
  session.SetBound(3);
  CompressionReport report = session.Compress().ValueOrDie();
  EXPECT_FALSE(report.feasible);
  EXPECT_EQ(report.compressed_size, 4u);  // coarsest abstraction
}

TEST_F(SessionTest, GreedyAndLevelAlgorithmsAvailable) {
  for (Algorithm algorithm : {Algorithm::kGreedy, Algorithm::kLevelCut,
                              Algorithm::kBruteForce}) {
    Session session;
    Load(&session);
    session.SetBound(10);
    CompressionReport report = session.Compress(algorithm).ValueOrDie();
    EXPECT_TRUE(report.feasible);
    EXPECT_LE(report.compressed_size, 10u);
    EXPECT_EQ(report.algorithm, algorithm);
  }
}

TEST_F(SessionTest, ExplainTraceAvailable) {
  Session session;
  Load(&session);
  session.SetBound(10);
  CompressionReport report =
      session.Compress(Algorithm::kOptimalDp, /*collect_explain=*/true)
          .ValueOrDie();
  EXPECT_NE(report.explain_text.find("DP trace"), std::string::npos);
  EXPECT_NE(report.explain_text.find("Plans"), std::string::npos);
}

TEST_F(SessionTest, RecompressionResetsState) {
  Session session;
  Load(&session);
  session.SetBound(4);
  session.Compress().ValueOrDie();
  std::size_t size_a = session.compressed().TotalMonomials();
  session.SetBound(14);
  session.Compress().ValueOrDie();
  EXPECT_GT(session.compressed().TotalMonomials(), size_a);
}

TEST_F(SessionTest, AlgorithmNamesStable) {
  EXPECT_STREQ(AlgorithmToString(Algorithm::kOptimalDp), "optimal-dp");
  EXPECT_STREQ(AlgorithmToString(Algorithm::kGreedy), "greedy");
  EXPECT_STREQ(AlgorithmToString(Algorithm::kLevelCut), "level-cut");
  EXPECT_STREQ(AlgorithmToString(Algorithm::kBruteForce), "brute-force");
}

}  // namespace
}  // namespace cobra::core
