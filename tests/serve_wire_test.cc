// Tests for the serving wire protocol (serve/wire.h): encode/decode round
// trips must preserve every field (doubles bit-exactly), malformed payloads
// must fail with InvalidArgument instead of misdecoding, and the frame
// layer must survive partial reads, clean closes, and hostile length
// prefixes.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.h"
#include "serve/wire.h"
#include "util/status.h"

namespace cobra::serve {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

WireRequest ExampleBatchRequest() {
  WireRequest request;
  request.type = MsgType::kAssignBatch;
  request.request_id = 0x1122334455667788ULL;
  request.deadline_ms = 2500;
  request.scenarios.Add("slump").ValueOrDie().Set("Business", 0.8);
  request.scenarios.Add("mixed").ValueOrDie().Set("Business", 1.25).Set("Special", 0.9);
  // A value whose bit pattern round-trips only if doubles are carried as
  // bit patterns, not via text.
  request.scenarios.Add("precise").ValueOrDie().Set("p1", 0.1 + 0.2);
  return request;
}

TEST(WireTest, RequestRoundTrip) {
  const WireRequest request = ExampleBatchRequest();
  const std::string payload = EncodeRequest(request);
  util::Result<WireRequest> decoded = DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, MsgType::kAssignBatch);
  EXPECT_EQ(decoded->request_id, request.request_id);
  EXPECT_EQ(decoded->deadline_ms, request.deadline_ms);
  ASSERT_EQ(decoded->scenarios.size(), 3u);
  EXPECT_EQ(decoded->scenarios.scenario(0).name, "slump");
  ASSERT_EQ(decoded->scenarios.scenario(2).deltas.size(), 1u);
  EXPECT_EQ(decoded->scenarios.scenario(2).deltas[0].var, "p1");
  EXPECT_TRUE(SameBits(decoded->scenarios.scenario(2).deltas[0].value,
                       0.1 + 0.2));
}

TEST(WireTest, PingRequestRoundTrip) {
  WireRequest request;
  request.type = MsgType::kPing;
  request.request_id = 7;
  const std::string payload = EncodeRequest(request);
  util::Result<WireRequest> decoded = DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, MsgType::kPing);
  EXPECT_EQ(decoded->request_id, 7u);
  EXPECT_TRUE(decoded->scenarios.empty());
}

TEST(WireTest, OkResponseRoundTrip) {
  WireResponse response;
  response.type = MsgType::kAssignBatch;
  response.request_id = 42;
  response.snapshot_version = 9;
  response.labels = {"P1", "P2"};
  response.scenario_names = {"a", "b", "c"};
  response.full_values = {1.0, 0.1 + 0.2, 3.0, 4.0, 5.0, 6.0};
  response.compressed_values = {6.5, 5.5, 4.5, 3.5, 2.5, 1.5};
  const std::string payload = EncodeResponse(response);
  util::Result<WireResponse> decoded = DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, WireCode::kOk);
  EXPECT_EQ(decoded->request_id, 42u);
  EXPECT_EQ(decoded->snapshot_version, 9u);
  EXPECT_EQ(decoded->labels, response.labels);
  EXPECT_EQ(decoded->scenario_names, response.scenario_names);
  ASSERT_EQ(decoded->full_values.size(), 6u);
  EXPECT_TRUE(SameBits(decoded->full_value(0, 1), 0.1 + 0.2));
  EXPECT_TRUE(SameBits(decoded->compressed_value(2, 0), 2.5));
}

TEST(WireTest, ErrorResponseRoundTrip) {
  WireResponse response;
  response.type = MsgType::kAssignBatch;
  response.request_id = 13;
  response.code = WireCode::kUnavailable;
  response.message = "request queue full";
  response.retry_after_ms = 75;
  const std::string payload = EncodeResponse(response);
  util::Result<WireResponse> decoded = DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, WireCode::kUnavailable);
  EXPECT_EQ(decoded->message, "request queue full");
  EXPECT_EQ(decoded->retry_after_ms, 75u);
  EXPECT_TRUE(decoded->labels.empty());
}

TEST(WireTest, StatsResponseRoundTrip) {
  WireResponse response;
  response.type = MsgType::kStats;
  response.request_id = 3;
  response.snapshot_version = 2;
  response.stats_text = "accepted=5 completed=5";
  const std::string payload = EncodeResponse(response);
  util::Result<WireResponse> decoded = DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->stats_text, "accepted=5 completed=5");
}

TEST(WireTest, EveryTruncatedRequestPrefixFails) {
  const std::string payload = EncodeRequest(ExampleBatchRequest());
  for (std::size_t len = 0; len < payload.size(); ++len) {
    util::Result<WireRequest> decoded =
        DecodeRequest(std::string_view(payload).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(WireTest, EveryTruncatedResponsePrefixFails) {
  WireResponse response;
  response.type = MsgType::kAssignBatch;
  response.request_id = 1;
  response.snapshot_version = 1;
  response.labels = {"P1"};
  response.scenario_names = {"s"};
  response.full_values = {1.0};
  response.compressed_values = {2.0};
  const std::string payload = EncodeResponse(response);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    util::Result<WireResponse> decoded =
        DecodeResponse(std::string_view(payload).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(WireTest, WrongVersionRejected) {
  std::string payload = EncodeRequest(ExampleBatchRequest());
  payload[0] = static_cast<char>(kWireVersion + 1);  // little-endian u16
  util::Result<WireRequest> decoded = DecodeRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(WireTest, ToWireCodeMapsServingCodes) {
  EXPECT_EQ(ToWireCode(util::StatusCode::kOk), WireCode::kOk);
  EXPECT_EQ(ToWireCode(util::StatusCode::kInvalidArgument),
            WireCode::kInvalidArgument);
  EXPECT_EQ(ToWireCode(util::StatusCode::kFailedPrecondition),
            WireCode::kFailedPrecondition);
  EXPECT_EQ(ToWireCode(util::StatusCode::kUnavailable),
            WireCode::kUnavailable);
  EXPECT_EQ(ToWireCode(util::StatusCode::kDeadlineExceeded),
            WireCode::kDeadlineExceeded);
  // NotFound on the serving path means a name the client sent does not
  // resolve — a client error, not a server fault.
  EXPECT_EQ(ToWireCode(util::StatusCode::kNotFound),
            WireCode::kInvalidArgument);
  // Unclassified codes degrade to kInternal rather than leaking numbers
  // outside the wire enum.
  EXPECT_EQ(ToWireCode(util::StatusCode::kDataLoss), WireCode::kInternal);
}

TEST(WireTest, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string sent = EncodeRequest(ExampleBatchRequest());
  ASSERT_TRUE(WriteFrame(fds[0], sent).ok());
  std::string received;
  bool closed = false;
  ASSERT_TRUE(ReadFrame(fds[1], &received, &closed).ok());
  EXPECT_FALSE(closed);
  EXPECT_EQ(received, sent);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireTest, CleanCloseAtFrameBoundarySetsClosed) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);
  std::string payload;
  bool closed = false;
  util::Status read = ReadFrame(fds[1], &payload, &closed);
  EXPECT_TRUE(read.ok()) << read.ToString();
  EXPECT_TRUE(closed);
  ::close(fds[1]);
}

TEST(WireTest, EofMidFrameFails) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A length prefix promising 100 bytes, then close with none sent.
  const unsigned char prefix[4] = {100, 0, 0, 0};
  ASSERT_EQ(::write(fds[0], prefix, 4), 4);
  ::close(fds[0]);
  std::string payload;
  bool closed = false;
  util::Status read = ReadFrame(fds[1], &payload, &closed);
  EXPECT_FALSE(read.ok());
  ::close(fds[1]);
}

TEST(WireTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  unsigned char prefix[4];
  std::memcpy(prefix, &huge, 4);
  ASSERT_EQ(::write(fds[0], prefix, 4), 4);
  std::string payload;
  bool closed = false;
  util::Status read = ReadFrame(fds[1], &payload, &closed);
  EXPECT_FALSE(read.ok());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireTest, WriteFrameRejectsOversizedPayload) {
  // No fd interaction: the size check precedes any write.
  std::string huge(kMaxFrameBytes + 1, 'x');
  util::Status written = WriteFrame(-1, huge);
  EXPECT_FALSE(written.ok());
  EXPECT_EQ(written.code(), util::StatusCode::kInvalidArgument);
}

TEST(WireTest, PipelinedFramesArriveInOrder) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::vector<std::string> sent;
  for (int i = 0; i < 5; ++i) {
    WireRequest request;
    request.type = MsgType::kPing;
    request.request_id = static_cast<std::uint64_t>(i);
    sent.push_back(EncodeRequest(request));
    ASSERT_TRUE(WriteFrame(fds[0], sent.back()).ok());
  }
  for (int i = 0; i < 5; ++i) {
    std::string payload;
    bool closed = false;
    ASSERT_TRUE(ReadFrame(fds[1], &payload, &closed).ok());
    EXPECT_EQ(payload, sent[static_cast<std::size_t>(i)]);
  }
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireTest, RequestAtScenarioCapDecodesButOneOverIsRejected) {
  WireRequest request;
  request.type = MsgType::kAssignBatch;
  request.scenarios.Reserve(kMaxRequestScenarios + 1);
  for (std::uint32_t i = 0; i < kMaxRequestScenarios; ++i) {
    ASSERT_TRUE(request.scenarios.Add("s" + std::to_string(i)).ok());
  }
  util::Result<WireRequest> at_cap = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(at_cap.ok()) << at_cap.status().ToString();
  EXPECT_EQ(at_cap->scenarios.size(), kMaxRequestScenarios);

  ASSERT_TRUE(request.scenarios.Add("one-over").ok());
  util::Result<WireRequest> over = DecodeRequest(EncodeRequest(request));
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), util::StatusCode::kInvalidArgument);
  // The error names the cap so the client knows what to shrink.
  EXPECT_NE(over.status().message().find("kMaxRequestScenarios"),
            std::string::npos);
  EXPECT_NE(over.status().message().find(
                std::to_string(kMaxRequestScenarios)),
            std::string::npos);
}

TEST(WireTest, RequestOverTotalDeltaCapIsRejected) {
  // 17 scenarios x 65536 overrides = 1,114,112 > kMaxRequestDeltas
  // (1,048,576), while every individual scenario is modest and the whole
  // frame stays far below kMaxFrameBytes — only the total-delta cap trips.
  WireRequest request;
  request.type = MsgType::kAssignBatch;
  for (int s = 0; s < 17; ++s) {
    auto handle = request.scenarios.Add("s" + std::to_string(s));
    ASSERT_TRUE(handle.ok());
    for (int d = 0; d < 65536; ++d) {
      handle->Set("v", 1.0 + d);
    }
  }
  const std::string payload = EncodeRequest(request);
  ASSERT_LT(payload.size(), kMaxFrameBytes);
  util::Result<WireRequest> decoded = DecodeRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("kMaxRequestDeltas"),
            std::string::npos);
}

TEST(WireTest, DuplicateScenarioNamesRejectedAtDecode) {
  // The decoder feeds names through ScenarioSet::Add, which now enforces
  // uniqueness — a hostile frame with twin names must not decode. Encode a
  // two-scenario request, then splice the second name to match the first.
  WireRequest request;
  request.type = MsgType::kAssignBatch;
  request.scenarios.Add("twin-a").ValueOrDie();
  request.scenarios.Add("twin-b").ValueOrDie();
  std::string payload = EncodeRequest(request);
  const std::size_t pos = payload.find("twin-b");
  ASSERT_NE(pos, std::string::npos);
  payload.replace(pos, 6, "twin-a");
  util::Result<WireRequest> decoded = DecodeRequest(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("twin-a"), std::string::npos);
}

}  // namespace
}  // namespace cobra::serve
