// Tests for the multi-tree greedy compressor (the NP-hard general case):
// correctness of the reported sizes against actual substitution, bound
// satisfaction, and behaviour with monomials spanning two trees.

#include "core/multi_tree.h"

#include <gtest/gtest.h>

#include "data/example_db.h"
#include "data/telephony.h"
#include "prov/parser.h"
#include "util/rng.h"

namespace cobra::core {
namespace {

class MultiTreeTest : public ::testing::Test {
 protected:
  /// Plan tree (Figure 2) + month quarter tree over m1..m6, with
  /// polynomials whose monomials contain one variable from each tree.
  void LoadTwoTrees() {
    plan_tree_ = ParseTree(data::kFigure2TreeText, &pool_).ValueOrDie();
    month_tree_ =
        ParseTree(data::MonthQuarterTreeText(6), &pool_).ValueOrDie();
    std::string text;
    // Every (plan in {b1,b2,e,p1}, month in m1..m6) pair, distinct coeffs.
    int c = 1;
    text = "P = ";
    for (const char* plan : {"b1", "b2", "e", "p1"}) {
      for (int m = 1; m <= 6; ++m) {
        if (c > 1) text += " + ";
        text += std::to_string(c++) + " * " + plan + " * m" +
                std::to_string(m);
      }
    }
    text += "\n";
    polys_ = prov::ParsePolySet(text, &pool_).ValueOrDie();
    ASSERT_EQ(polys_.TotalMonomials(), 24u);
  }

  prov::VarPool pool_;
  AbstractionTree plan_tree_, month_tree_;
  prov::PolySet polys_;
};

TEST_F(MultiTreeTest, NoCompressionNeededKeepsLeafCuts) {
  LoadTwoTrees();
  MultiTreeSolution s =
      GreedyMultiTreeCut(polys_, {plan_tree_, month_tree_}, 24, pool_)
          .ValueOrDie();
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.compressed_size, 24u);
  EXPECT_EQ(s.moves_applied, 0u);
}

TEST_F(MultiTreeTest, ReportedSizeMatchesSubstitution) {
  LoadTwoTrees();
  for (std::size_t bound : {20u, 12u, 8u, 4u, 2u}) {
    MultiTreeSolution s =
        GreedyMultiTreeCut(polys_, {plan_tree_, month_tree_}, bound, pool_)
            .ValueOrDie();
    prov::VarPool scratch = pool_;
    Abstraction abs = ApplyMultiTreeCuts(polys_, {plan_tree_, month_tree_},
                                         s.cuts, &scratch)
                          .ValueOrDie();
    EXPECT_EQ(abs.compressed_size, s.compressed_size) << "bound " << bound;
    if (s.feasible) {
      EXPECT_LE(s.compressed_size, bound) << "bound " << bound;
    }
  }
}

TEST_F(MultiTreeTest, FullCollapseReachesOneMonomial) {
  LoadTwoTrees();
  MultiTreeSolution s =
      GreedyMultiTreeCut(polys_, {plan_tree_, month_tree_}, 1, pool_)
          .ValueOrDie();
  // Collapsing both trees to their roots leaves a single monomial
  // Plans * Months per polynomial.
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.compressed_size, 1u);
  EXPECT_EQ(s.cuts[0].size(), 1u);
  EXPECT_EQ(s.cuts[1].size(), 1u);
}

TEST_F(MultiTreeTest, CutsAreAlwaysValid) {
  LoadTwoTrees();
  for (std::size_t bound = 1; bound <= 24; bound += 3) {
    MultiTreeSolution s =
        GreedyMultiTreeCut(polys_, {plan_tree_, month_tree_}, bound, pool_)
            .ValueOrDie();
    EXPECT_TRUE(s.cuts[0].Validate(plan_tree_).ok());
    EXPECT_TRUE(s.cuts[1].Validate(month_tree_).ok());
  }
}

TEST_F(MultiTreeTest, SingleTreeModeAgreesWithSingleTreeIdentity) {
  // With one tree the greedy multi-tree result must respect the single-tree
  // size identity (base + Σ weights).
  LoadTwoTrees();
  prov::PolySet single =
      prov::ParsePolySet("Q = 3 * b1 * z + 4 * b2 * z + 5 * e * z\n", &pool_)
          .ValueOrDie();
  MultiTreeSolution s =
      GreedyMultiTreeCut(single, {plan_tree_}, 1, pool_).ValueOrDie();
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.compressed_size, 1u);  // all collapse to Business (or higher)
}

TEST_F(MultiTreeTest, RejectsNonDisjointTrees) {
  LoadTwoTrees();
  EXPECT_FALSE(
      GreedyMultiTreeCut(polys_, {plan_tree_, plan_tree_}, 10, pool_).ok());
}

TEST_F(MultiTreeTest, RejectsEmptyTreeList) {
  LoadTwoTrees();
  EXPECT_FALSE(GreedyMultiTreeCut(polys_, {}, 10, pool_).ok());
}

TEST_F(MultiTreeTest, ApplyRejectsArityMismatch) {
  LoadTwoTrees();
  EXPECT_FALSE(
      ApplyMultiTreeCuts(polys_, {plan_tree_, month_tree_},
                         {Cut::Root(plan_tree_)}, &pool_)
          .ok());
}

TEST_F(MultiTreeTest, MonomialsWithTwoVarsOfOneTreeSupported) {
  // The general mode allows b1*b2 (both under SB): collapsing SB turns it
  // into SB^2.
  LoadTwoTrees();
  prov::PolySet polys =
      prov::ParsePolySet("P = b1 * b2 + b1 + b2\n", &pool_).ValueOrDie();
  MultiTreeSolution s =
      GreedyMultiTreeCut(polys, {plan_tree_}, 2, pool_).ValueOrDie();
  EXPECT_TRUE(s.feasible);
  prov::VarPool scratch = pool_;
  Abstraction abs =
      ApplyMultiTreeCuts(polys, {plan_tree_}, s.cuts, &scratch).ValueOrDie();
  EXPECT_EQ(abs.compressed_size, s.compressed_size);
  EXPECT_LE(abs.compressed_size, 2u);  // {SB^2, 2*SB}
}

TEST_F(MultiTreeTest, GreedyMonotoneInBound) {
  LoadTwoTrees();
  std::size_t prev_nodes = 0;
  for (std::size_t bound : {1u, 4u, 8u, 16u, 24u}) {
    MultiTreeSolution s =
        GreedyMultiTreeCut(polys_, {plan_tree_, month_tree_}, bound, pool_)
            .ValueOrDie();
    EXPECT_GE(s.num_cut_nodes, prev_nodes);
    prev_nodes = s.num_cut_nodes;
  }
}

}  // namespace
}  // namespace cobra::core
