// Experiment E1 + E2 as tests: the Figure 1 database reproduces the exact
// polynomials P1/P2 of Example 2 through the engine, and the five cuts of
// Example 4 reproduce the paper's sizes and variable counts.

#include "data/example_db.h"

#include <gtest/gtest.h>

#include "core/apply.h"
#include "core/profile.h"
#include "prov/parser.h"
#include "rel/sql/planner.h"

namespace cobra::data {
namespace {

class ExampleDbTest : public ::testing::Test {
 protected:
  ExampleDbTest() : db_(BuildExampleDatabase()) {
    InstrumentExampleDb(&db_).CheckOK();
  }

  prov::PolySet QueryProvenance() {
    return rel::sql::RunSql(db_, kExampleRevenueQuery)
        .ValueOrDie()
        .Provenance();
  }

  rel::Database db_;
};

TEST_F(ExampleDbTest, TablesMatchFigure1Shape) {
  EXPECT_EQ(db_.GetTable("Cust").ValueOrDie()->NumRows(), 7u);
  EXPECT_EQ(db_.GetTable("Calls").ValueOrDie()->NumRows(), 14u);
  EXPECT_EQ(db_.GetTable("Plans").ValueOrDie()->NumRows(), 14u);
}

TEST_F(ExampleDbTest, PlansAnnotationsArePlanTimesMonth) {
  const rel::AnnotatedTable& plans = *db_.GetTable("Plans").ValueOrDie();
  // First row is (A, 1, 0.4) -> annotation p1 * m1.
  prov::VarPool* pool = db_.mutable_var_pool();
  EXPECT_EQ(plans.Annotation(0),
            prov::ParsePolynomial("p1 * m1", pool).ValueOrDie());
}

// ---- E1: the engine reproduces Example 2 byte for byte ----

TEST_F(ExampleDbTest, E1_QueryReproducesP1AndP2Exactly) {
  prov::PolySet computed = QueryProvenance();
  ASSERT_EQ(computed.size(), 2u);

  prov::VarPool* pool = db_.mutable_var_pool();
  prov::PolySet expected =
      prov::ParsePolySet(kExamplePolynomialsText, pool).ValueOrDie();

  std::size_t p1 = computed.FindLabel("10001");
  std::size_t p2 = computed.FindLabel("10002");
  ASSERT_NE(p1, prov::PolySet::npos);
  ASSERT_NE(p2, prov::PolySet::npos);
  EXPECT_TRUE(computed.poly(p1).AlmostEquals(expected.poly(0), 1e-9))
      << computed.poly(p1).ToString(*pool);
  EXPECT_TRUE(computed.poly(p2).AlmostEquals(expected.poly(1), 1e-9))
      << computed.poly(p2).ToString(*pool);
  EXPECT_EQ(computed.TotalMonomials(), 14u);
}

TEST_F(ExampleDbTest, E1_SpecificCoefficients) {
  prov::PolySet computed = QueryProvenance();
  prov::VarPool* pool = db_.mutable_var_pool();
  const prov::Polynomial& p1 = computed.poly(computed.FindLabel("10001"));
  // 522 minutes * 0.4 ppm = 208.8 on p1*m1 (customer 1, month 1).
  prov::Monomial p1m1 =
      prov::Monomial::Of(pool->Find("p1"), pool->Find("m1"));
  EXPECT_NEAR(p1.CoefficientOf(p1m1), 208.8, 1e-9);
  // 480 * 0.5 = 240 on p1*m3.
  prov::Monomial p1m3 =
      prov::Monomial::Of(pool->Find("p1"), pool->Find("m3"));
  EXPECT_NEAR(p1.CoefficientOf(p1m3), 240.0, 1e-9);
  const prov::Polynomial& p2 = computed.poly(computed.FindLabel("10002"));
  // 671 * 0.15 = 100.65 on b2*m3 (customer 7, month 3).
  prov::Monomial b2m3 =
      prov::Monomial::Of(pool->Find("b2"), pool->Find("m3"));
  EXPECT_NEAR(p2.CoefficientOf(b2m3), 100.65, 1e-9);
}

// ---- E2: Example 4's cut table ----

struct CutCase {
  const char* name;
  std::vector<std::string> nodes;
  std::size_t p1_monomials;  // size of compressed P1
  std::size_t p1_variables;  // #distinct vars in compressed P1
  std::size_t total_monomials;  // P1 + P2
};

class Example4Cuts : public ::testing::TestWithParam<CutCase> {};

TEST_P(Example4Cuts, ReproducesPaperSizeAndVariables) {
  const CutCase& c = GetParam();
  prov::VarPool pool;
  core::AbstractionTree tree =
      core::ParseTree(kFigure2TreeText, &pool).ValueOrDie();
  prov::PolySet polys =
      prov::ParsePolySet(kExamplePolynomialsText, &pool).ValueOrDie();
  core::Cut cut = core::Cut::FromNames(tree, c.nodes).ValueOrDie();
  core::Abstraction abs =
      core::ApplyCut(polys, tree, cut, &pool).ValueOrDie();
  EXPECT_EQ(abs.compressed.poly(0).NumMonomials(), c.p1_monomials);
  EXPECT_EQ(abs.compressed.poly(0).Variables().size(), c.p1_variables);
  EXPECT_EQ(abs.compressed_size, c.total_monomials);
}

INSTANTIATE_TEST_SUITE_P(
    PaperCuts, Example4Cuts,
    ::testing::Values(
        // S1: paper says P1 -> 4 monomials, 4 variables; P2 collapses to 2
        // (b1, b2, e share the {m1, m3} residues), total 6.
        CutCase{"S1", {"Business", "Special", "Standard"}, 4, 4, 6},
        // S2: {SB, e, f1, f2, Y, v, Standard}; P2 under SB+e -> 4.
        CutCase{"S2", {"SB", "e", "f1", "f2", "Y", "v", "Standard"}, 8, 6, 12},
        // S3: {b1, b2, e, Special, Standard}: P2 unchanged (6).
        CutCase{"S3", {"b1", "b2", "e", "Special", "Standard"}, 4, 4, 10},
        // S4: {SB, e, F, Y, v, p1, p2}.
        CutCase{"S4", {"SB", "e", "F", "Y", "v", "p1", "p2"}, 8, 6, 12},
        // S5: paper says P1 -> 2 monomials, 3 variables.
        CutCase{"S5", {"Plans"}, 2, 3, 4}),
    [](const ::testing::TestParamInfo<CutCase>& info) {
      return info.param.name;
    });

TEST(Example4Math, S1CoefficientsMatchPaperText) {
  // The paper prints: 208.8·St·m1 + 240·St·m3 + 245.3·Sp·m1 + 211.15·Sp·m3.
  // 245.3 = 127.4 + 75.9 + 42 ; 211.15 = 114.45 + 72.5 + 24.2.
  EXPECT_NEAR(127.4 + 75.9 + 42.0, 245.3, 1e-9);
  EXPECT_NEAR(114.45 + 72.5 + 24.2, 211.15, 1e-9);
  // S5: 466.1 = 208.8 + 245.3 + (implicitly 0 from P2? no — P1 only); check
  // P1's m1 total and m3 total as printed.
  EXPECT_NEAR(208.8 + 127.4 + 75.9 + 42.0, 454.1, 1e-9);
  // The paper prints 466.1 for the S5 m1-coefficient, but the sum of the
  // printed P1 m1-coefficients is 454.1 (the m3 figure, 451.15, checks out
  // exactly: 240 + 114.45 + 72.5 + 24.2). We treat 466.1 as a typo in the
  // demo text and assert the arithmetically consistent value — also noted
  // in EXPERIMENTS.md.
  prov::VarPool pool;
  core::AbstractionTree tree =
      core::ParseTree(kFigure2TreeText, &pool).ValueOrDie();
  prov::PolySet polys =
      prov::ParsePolySet(kExamplePolynomialsText, &pool).ValueOrDie();
  core::Cut s5 = core::Cut::FromNames(tree, {"Plans"}).ValueOrDie();
  core::Abstraction abs =
      core::ApplyCut(polys, tree, s5, &pool).ValueOrDie();
  prov::VarId plans = pool.Find("Plans");
  prov::VarId m1 = pool.Find("m1");
  EXPECT_NEAR(abs.compressed.poly(0).CoefficientOf(
                  prov::Monomial::Of(plans, m1)),
              454.1, 1e-9);
}

}  // namespace
}  // namespace cobra::data
