// The central correctness property of provenance-based hypothetical
// reasoning (Green et al. / Amsterdamer et al., used by the paper as the
// foundation of COBRA): applying a valuation to the provenance polynomials
// equals re-running the query on a database whose instrumented measures are
// re-scaled by the same valuation.
//
// These tests instrument random telephony-like databases, run the revenue
// query once with provenance, then check many random scenarios both ways.

#include <gtest/gtest.h>

#include "rel/database.h"
#include "rel/instrument.h"
#include "rel/sql/planner.h"
#include "util/rng.h"
#include "util/str.h"

namespace cobra {
namespace {

/// Builds a random mini telephony database. When `scale` is non-null, the
/// Plans.Price values are pre-multiplied by the scenario factors (the
/// "modify the input and re-execute" side of the commutation equation).
rel::Database BuildRandomDb(std::uint64_t seed, std::size_t num_customers,
                            std::size_t num_plans, std::size_t num_months,
                            std::size_t num_zips,
                            const std::vector<double>* plan_scale,
                            const std::vector<double>* month_scale) {
  util::Rng rng(seed);
  rel::Database db;

  rel::Table cust(rel::Schema("Cust", {{"ID", rel::Type::kInt64},
                                       {"Plan", rel::Type::kString},
                                       {"Zip", rel::Type::kInt64}}));
  std::vector<std::size_t> cust_plan(num_customers);
  for (std::size_t i = 0; i < num_customers; ++i) {
    cust_plan[i] = rng.NextBelow(num_plans);
    cust.AppendRow({rel::Value(static_cast<std::int64_t>(i + 1)),
                    rel::Value("P" + std::to_string(cust_plan[i])),
                    rel::Value(static_cast<std::int64_t>(rng.NextBelow(num_zips)))});
  }
  db.AddTable("Cust", std::move(cust)).CheckOK();

  rel::Table calls(rel::Schema("Calls", {{"CID", rel::Type::kInt64},
                                         {"Mo", rel::Type::kInt64},
                                         {"Dur", rel::Type::kInt64}}));
  for (std::size_t i = 0; i < num_customers; ++i) {
    for (std::size_t m = 1; m <= num_months; ++m) {
      if (rng.NextBool(0.3)) continue;  // irregular coverage
      calls.AppendRow({rel::Value(static_cast<std::int64_t>(i + 1)),
                       rel::Value(static_cast<std::int64_t>(m)),
                       rel::Value(rng.NextInRange(1, 500))});
    }
  }
  db.AddTable("Calls", std::move(calls)).CheckOK();

  rel::Table plans(rel::Schema("Plans", {{"Plan", rel::Type::kString},
                                         {"Mo", rel::Type::kInt64},
                                         {"Price", rel::Type::kDouble}}));
  for (std::size_t p = 0; p < num_plans; ++p) {
    for (std::size_t m = 1; m <= num_months; ++m) {
      double price = rng.NextDoubleInRange(0.05, 0.5);
      if (plan_scale != nullptr) price *= (*plan_scale)[p];
      if (month_scale != nullptr) price *= (*month_scale)[m - 1];
      plans.AppendRow({rel::Value("P" + std::to_string(p)),
                       rel::Value(static_cast<std::int64_t>(m)),
                       rel::Value(price)});
    }
  }
  db.AddTable("Plans", std::move(plans)).CheckOK();
  return db;
}

constexpr char kQuery[] =
    "SELECT Zip, SUM(Calls.Dur * Plans.Price) AS revenue "
    "FROM Calls, Cust, Plans "
    "WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID "
    "AND Calls.Mo = Plans.Mo GROUP BY Cust.Zip";

class CommutationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CommutationTest, ValuationCommutesWithQueryEvaluation) {
  const std::uint64_t seed = GetParam();
  const std::size_t kCustomers = 40, kPlans = 5, kMonths = 4, kZips = 3;

  // Provenance side: instrument, evaluate once, then assign.
  rel::Database db = BuildRandomDb(seed, kCustomers, kPlans, kMonths, kZips,
                                   nullptr, nullptr);
  for (std::size_t p = 0; p < kPlans; ++p) {
    rel::InstrumentByDictionary(&db, "Plans", "Plan",
                                {{"P" + std::to_string(p),
                                  "pv" + std::to_string(p)}})
        .CheckOK();
  }
  rel::InstrumentByColumns(&db, "Plans", {{"Mo", "m"}}).CheckOK();
  rel::sql::QueryResult with_prov = rel::sql::RunSql(db, kQuery).ValueOrDie();

  util::Rng scenario_rng(seed ^ 0xdecaf);
  for (int round = 0; round < 3; ++round) {
    std::vector<double> plan_scale(kPlans), month_scale(kMonths);
    for (double& s : plan_scale) s = scenario_rng.NextDoubleInRange(0.5, 1.5);
    for (double& s : month_scale) s = scenario_rng.NextDoubleInRange(0.5, 1.5);

    // (a) Valuation applied to the pre-computed provenance.
    prov::Valuation valuation(*db.var_pool());
    for (std::size_t p = 0; p < kPlans; ++p) {
      valuation.SetByName(*db.var_pool(), "pv" + std::to_string(p),
                          plan_scale[p])
          .CheckOK();
    }
    for (std::size_t m = 1; m <= kMonths; ++m) {
      valuation.SetByName(*db.var_pool(), "m" + std::to_string(m),
                          month_scale[m - 1])
          .CheckOK();
    }
    rel::Table via_provenance = with_prov.Evaluate(valuation);

    // (b) Modify the database and re-execute from scratch.
    rel::Database scaled = BuildRandomDb(seed, kCustomers, kPlans, kMonths,
                                         kZips, &plan_scale, &month_scale);
    prov::Valuation neutral(*scaled.var_pool());
    rel::Table via_rerun =
        rel::sql::RunSql(scaled, kQuery).ValueOrDie().Evaluate(neutral);

    // Same groups, same values.
    ASSERT_EQ(via_provenance.NumRows(), via_rerun.NumRows());
    for (std::size_t i = 0; i < via_provenance.NumRows(); ++i) {
      std::int64_t zip = via_provenance.Get(i, 0).AsInt64();
      bool matched = false;
      for (std::size_t j = 0; j < via_rerun.NumRows(); ++j) {
        if (via_rerun.Get(j, 0).AsInt64() != zip) continue;
        matched = true;
        EXPECT_NEAR(via_provenance.Get(i, 1).AsDouble(),
                    via_rerun.Get(j, 1).AsDouble(),
                    1e-6 * (1.0 + std::abs(via_rerun.Get(j, 1).AsDouble())))
            << "zip " << zip << " seed " << seed;
      }
      EXPECT_TRUE(matched) << "zip " << zip << " missing after re-run";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommutationTest,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(CommutationEdge, DeletionSemantics) {
  // Setting a tuple variable to 0 must equal deleting its contribution.
  rel::Database db = BuildRandomDb(3, 10, 2, 2, 1, nullptr, nullptr);
  rel::InstrumentByColumns(&db, "Plans", {{"Mo", "m"}}).CheckOK();
  rel::sql::QueryResult result = rel::sql::RunSql(db, kQuery).ValueOrDie();

  prov::Valuation kill_m2(*db.var_pool());
  kill_m2.SetByName(*db.var_pool(), "m2", 0.0).CheckOK();
  rel::Table with_kill = result.Evaluate(kill_m2);

  // Re-run restricted to month 1 only.
  rel::sql::QueryResult only_m1 =
      rel::sql::RunSql(db,
                       "SELECT Zip, SUM(Calls.Dur * Plans.Price) AS revenue "
                       "FROM Calls, Cust, Plans "
                       "WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID "
                       "AND Calls.Mo = Plans.Mo AND Calls.Mo = 1 "
                       "GROUP BY Cust.Zip")
          .ValueOrDie();
  prov::Valuation neutral(*db.var_pool());
  rel::Table direct = only_m1.Evaluate(neutral);
  ASSERT_EQ(with_kill.NumRows(), direct.NumRows());
  EXPECT_NEAR(with_kill.Get(0, 1).AsDouble(), direct.Get(0, 1).AsDouble(),
              1e-9);
}

}  // namespace
}  // namespace cobra
