// Tests for the base-invariant plan split and the 2-D grid sweep:
// AssignGrid cells must be bit-identical to per-base AssignBatch calls for
// every engine, a warm same-scenario/different-base AssignBatch must reuse
// the cached PlanCore (core hit, no re-planning), the overlay cache must
// account hits/misses and stay bounded, and a grid sweep must not flush the
// serving cache's overlays. A randomized property test drives random bases
// through random scenario sets for every engine.

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/batch_plan.h"
#include "core/compiled_session.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/example_db.h"
#include "util/rng.h"

namespace cobra::core {
namespace {

void LoadPaperSession(Session* session) {
  session->LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
  session->SetTreeText(data::kFigure2TreeText).CheckOK();
  session->SetBound(10);
  session->Compress().ValueOrDie();
}

ScenarioSet MakeScenarios(const CompiledSession& snapshot, std::size_t n) {
  const std::vector<MetaVar>& meta = snapshot.meta_vars();
  EXPECT_FALSE(meta.empty());
  ScenarioSet set;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = set.Add("scenario-" + std::to_string(i)).ValueOrDie();
    s.Set(meta[i % meta.size()].name, 1.0 + 0.05 * static_cast<double>(i + 1));
    if (meta.size() > 1) {
      s.Set(meta[(i + 1) % meta.size()].name,
            1.0 - 0.02 * static_cast<double>(i + 1));
    }
  }
  return set;
}

// Pool-sized bases that perturb the meta variables (the compressed-side
// knobs a per-user base realistically moves), each distinct.
std::vector<prov::Valuation> MakeBases(const CompiledSession& snapshot,
                                       std::size_t count) {
  const std::vector<MetaVar>& meta = snapshot.meta_vars();
  std::vector<prov::Valuation> bases;
  bases.reserve(count);
  for (std::size_t b = 0; b < count; ++b) {
    prov::Valuation base(snapshot.pool_size());
    for (std::size_t m = 0; m < meta.size(); ++m) {
      base.Set(meta[m].var,
               1.0 + 0.01 * static_cast<double>(b + 1) *
                         static_cast<double>(m + 1));
    }
    bases.push_back(std::move(base));
  }
  return bases;
}

void ExpectGridMatchesBatches(const CompiledSession& snapshot,
                              const GridAssignReport& grid,
                              const ScenarioSet& scenarios,
                              const std::vector<prov::Valuation>& bases,
                              const BatchOptions& options) {
  ASSERT_EQ(grid.num_bases, bases.size());
  for (std::size_t b = 0; b < bases.size(); ++b) {
    BatchAssignReport batch =
        snapshot.AssignBatch(scenarios, bases[b], options).ValueOrDie();
    ASSERT_EQ(batch.reports.size(), grid.num_scenarios()) << "base " << b;
    for (std::size_t s = 0; s < grid.num_scenarios(); ++s) {
      const auto& rows = batch.reports[s].delta.rows;
      ASSERT_EQ(rows.size(), grid.num_groups) << "base " << b;
      for (std::size_t g = 0; g < grid.num_groups; ++g) {
        EXPECT_EQ(grid.full_value(b, s, g), rows[g].full)
            << "base " << b << " scenario " << s << " group " << g;
        EXPECT_EQ(grid.compressed_value(b, s, g), rows[g].compressed)
            << "base " << b << " scenario " << s << " group " << g;
      }
    }
  }
}

// ------------------------------------------------------------- bit-identity

TEST(AssignGridTest, CellsBitIdenticalToPerBaseAssignBatchAcrossEngines) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(*snapshot, 9);
  std::vector<prov::Valuation> bases = MakeBases(*snapshot, 5);

  for (BatchOptions::Sweep sweep :
       {BatchOptions::Sweep::kAuto, BatchOptions::Sweep::kBlocked,
        BatchOptions::Sweep::kSparseDelta, BatchOptions::Sweep::kDenseCopy}) {
    BatchOptions options;
    options.sweep = sweep;
    snapshot->ClearPlanCache();
    GridAssignReport grid =
        snapshot->AssignGrid(scenarios, bases, options).ValueOrDie();
    EXPECT_EQ(grid.num_bases, bases.size());
    EXPECT_EQ(grid.num_scenarios(), 9u);
    EXPECT_NE(grid.engine, BatchOptions::Sweep::kAuto);
    EXPECT_FALSE(grid.ToString().empty());
    ExpectGridMatchesBatches(*snapshot, grid, scenarios, bases, options);
  }
}

TEST(AssignGridTest, MultiThreadedGridIsBitIdenticalToSingleThreaded) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(*snapshot, 13);
  std::vector<prov::Valuation> bases = MakeBases(*snapshot, 4);

  BatchOptions serial;
  serial.num_threads = 1;
  GridAssignReport one =
      snapshot->AssignGrid(scenarios, bases, serial).ValueOrDie();
  BatchOptions parallel;
  parallel.num_threads = 8;
  GridAssignReport many =
      snapshot->AssignGrid(scenarios, bases, parallel).ValueOrDie();
  ASSERT_EQ(one.full_values.size(), many.full_values.size());
  for (std::size_t c = 0; c < one.full_values.size(); ++c) {
    EXPECT_EQ(one.full_values[c], many.full_values[c]) << "cell " << c;
    EXPECT_EQ(one.compressed_values[c], many.compressed_values[c])
        << "cell " << c;
  }
  // The error aggregates reduce in fixed cell order: identical too.
  EXPECT_EQ(one.max_abs_error, many.max_abs_error);
  EXPECT_EQ(one.mean_abs_error, many.mean_abs_error);
}

TEST(AssignGridTest, EmptyBaseListIsRejected) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(*snapshot, 2);
  util::Result<GridAssignReport> r =
      snapshot->AssignGrid(scenarios, std::span<const prov::Valuation>{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

// ------------------------------------------------- core-plan cache reuse

// The acceptance check for the base-invariant split: re-planning the same
// scenario set under a DIFFERENT base must reuse the cached PlanCore (a
// core hit — only the cheap overlay is rebuilt), not re-run full planning.
TEST(AssignGridTest, DifferentBaseReusesTheCachedPlanCore) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(*snapshot, 8);
  std::vector<prov::Valuation> bases = MakeBases(*snapshot, 2);

  BatchAssignReport cold =
      snapshot->AssignBatch(scenarios, bases[0]).ValueOrDie();
  EXPECT_FALSE(cold.plan_cache_hit);
  EXPECT_FALSE(cold.plan_core_hit);
  CompiledSession::PlanCacheStats after_cold = snapshot->plan_cache_stats();
  EXPECT_EQ(after_cold.entries, 1u);
  EXPECT_EQ(after_cold.overlays, 1u);
  EXPECT_EQ(after_cold.misses, 1u);
  EXPECT_EQ(after_cold.core_hits, 0u);

  // Same scenarios, different base: core hit, overlay rebuilt, not a full
  // cache hit (the per-base tables had to be rebound).
  BatchAssignReport warm_core =
      snapshot->AssignBatch(scenarios, bases[1]).ValueOrDie();
  EXPECT_FALSE(warm_core.plan_cache_hit);
  EXPECT_TRUE(warm_core.plan_core_hit);
  CompiledSession::PlanCacheStats after_core = snapshot->plan_cache_stats();
  EXPECT_EQ(after_core.entries, 1u);  // same core entry, one more overlay
  EXPECT_EQ(after_core.overlays, 2u);
  EXPECT_EQ(after_core.misses, 1u);  // no second full planning
  EXPECT_EQ(after_core.core_hits, 1u);

  // Same scenarios, same base again: full hit.
  BatchAssignReport warm_full =
      snapshot->AssignBatch(scenarios, bases[1]).ValueOrDie();
  EXPECT_TRUE(warm_full.plan_cache_hit);
  EXPECT_TRUE(warm_full.plan_core_hit);
  EXPECT_EQ(snapshot->plan_cache_stats().hits, after_core.hits + 1);

  // Both plans share the identical PlanCore object.
  bool hit = false;
  auto plan_a = snapshot->PlanBatch(scenarios, bases[0], {}, &hit).ValueOrDie();
  auto plan_b = snapshot->PlanBatch(scenarios, bases[1], {}, &hit).ValueOrDie();
  EXPECT_EQ(plan_a->core().get(), plan_b->core().get());
  EXPECT_NE(&plan_a->overlay(), &plan_b->overlay());

  // The cached-plan table reports the per-entry overlay count.
  std::vector<CompiledSession::CachedPlanInfo> table = snapshot->CachedPlans();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].overlays, 2u);
}

TEST(AssignGridTest, OverlayCacheIsBoundedFifo) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(*snapshot, 6);
  std::vector<prov::Valuation> bases = MakeBases(*snapshot, 12);

  for (const prov::Valuation& base : bases) {
    snapshot->AssignBatch(scenarios, base).ValueOrDie();
  }
  CompiledSession::PlanCacheStats stats = snapshot->plan_cache_stats();
  EXPECT_EQ(stats.entries, 1u);     // one core entry for the whole sweep
  EXPECT_LE(stats.overlays, 8u);    // overlays FIFO-bounded per entry
  EXPECT_EQ(stats.misses, 1u);      // full planning ran exactly once
  EXPECT_EQ(stats.core_hits, 11u);  // every later base reused the core

  // The newest base is still cached (FIFO evicts the oldest): replaying it
  // is a full hit.
  BatchAssignReport replay =
      snapshot->AssignBatch(scenarios, bases.back()).ValueOrDie();
  EXPECT_TRUE(replay.plan_cache_hit);
  // The oldest was evicted: core hit only.
  BatchAssignReport evicted =
      snapshot->AssignBatch(scenarios, bases.front()).ValueOrDie();
  EXPECT_FALSE(evicted.plan_cache_hit);
  EXPECT_TRUE(evicted.plan_core_hit);
}

TEST(AssignGridTest, GridDoesNotFlushTheOverlayCache) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(*snapshot, 6);
  std::vector<prov::Valuation> bases = MakeBases(*snapshot, 12);

  // A 12-base grid materializes 11 overlays locally; only the first base's
  // plan enters the cache, so a serving tier's overlays survive the sweep.
  GridAssignReport grid =
      snapshot->AssignGrid(scenarios, bases).ValueOrDie();
  EXPECT_FALSE(grid.plan_cache_hit);
  EXPECT_FALSE(grid.plan_core_hit);
  EXPECT_EQ(grid.overlay_cache_hits, 0u);
  CompiledSession::PlanCacheStats stats = snapshot->plan_cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.overlays, 1u);

  // A second grid over the same scenarios: core hit, and the first base's
  // cached overlay is found read-only.
  GridAssignReport again =
      snapshot->AssignGrid(scenarios, bases).ValueOrDie();
  EXPECT_TRUE(again.plan_cache_hit);  // first base fully cached
  EXPECT_TRUE(again.plan_core_hit);
  EXPECT_EQ(again.overlay_cache_hits, 0u);  // bases 1.. were never inserted

  // Warm a second overlay through AssignBatch, then the grid reuses it.
  snapshot->AssignBatch(scenarios, bases[1]).ValueOrDie();
  GridAssignReport third = snapshot->AssignGrid(scenarios, bases).ValueOrDie();
  EXPECT_EQ(third.overlay_cache_hits, 1u);
}

// --------------------------------------------------- randomized property

TEST(AssignGridTest, RandomizedBasesMatchPerBaseBatchesForEveryEngine) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  const std::vector<MetaVar>& meta = snapshot->meta_vars();
  ASSERT_FALSE(meta.empty());

  util::Rng rng(0x6B1D5EEDULL);
  for (int iteration = 0; iteration < 6; ++iteration) {
    util::Rng it = rng.Fork(static_cast<std::uint64_t>(iteration));
    ScenarioSet scenarios;
    const std::size_t n = static_cast<std::size_t>(it.NextInRange(1, 17));
    for (std::size_t s = 0; s < n; ++s) {
      auto handle = scenarios.Add("s" + std::to_string(s)).ValueOrDie();
      const std::size_t overrides =
          static_cast<std::size_t>(it.NextInRange(0, 4));
      for (std::size_t o = 0; o < overrides; ++o) {
        handle.Set(meta[it.NextBelow(meta.size())].name,
                   it.NextDoubleInRange(0.5, 1.5));
      }
    }
    std::vector<prov::Valuation> bases;
    const std::size_t num_bases =
        static_cast<std::size_t>(it.NextInRange(1, 6));
    for (std::size_t b = 0; b < num_bases; ++b) {
      prov::Valuation base(snapshot->pool_size());
      const std::size_t moved = static_cast<std::size_t>(it.NextInRange(0, 4));
      for (std::size_t m = 0; m < moved; ++m) {
        base.Set(meta[it.NextBelow(meta.size())].var,
                 it.NextDoubleInRange(0.25, 2.0));
      }
      bases.push_back(std::move(base));
    }

    for (BatchOptions::Sweep sweep :
         {BatchOptions::Sweep::kAuto, BatchOptions::Sweep::kBlocked,
          BatchOptions::Sweep::kSparseDelta}) {
      BatchOptions options;
      options.sweep = sweep;
      options.num_threads = static_cast<std::size_t>(it.NextInRange(1, 4));
      snapshot->ClearPlanCache();
      GridAssignReport grid =
          snapshot->AssignGrid(scenarios, bases, options).ValueOrDie();
      ExpectGridMatchesBatches(*snapshot, grid, scenarios, bases, options);
    }
  }
}

}  // namespace
}  // namespace cobra::core
