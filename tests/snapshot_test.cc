// Tests for serializable serving snapshots (core/io SnapshotPackage +
// CompiledSession::FromSnapshot): round trips must reconstruct a serving
// session with zero recompilation and bit-identical Assign/AssignBatch
// results; malformed files and inconsistent packages must fail with
// descriptive Statuses instead of aborting or misbehaving.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/compiled_session.h"
#include "core/io.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/example_db.h"
#include "prov/eval_program.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/str.h"

namespace cobra::core {
namespace {

/// Bitwise equality of two doubles — stricter than ==, which would let
/// +0.0 pass for -0.0.
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

/// Asserts every result double of two batched reports is bit-identical.
void ExpectBatchBitIdentical(const BatchAssignReport& origin,
                             const BatchAssignReport& replica) {
  ASSERT_EQ(origin.reports.size(), replica.reports.size());
  for (std::size_t i = 0; i < origin.reports.size(); ++i) {
    const auto& a = origin.reports[i].delta.rows;
    const auto& b = replica.reports[i].delta.rows;
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t r = 0; r < a.size(); ++r) {
      EXPECT_EQ(a[r].label, b[r].label);
      EXPECT_TRUE(SameBits(a[r].full, b[r].full))
          << "scenario " << i << " row " << r << ": " << a[r].full << " vs "
          << b[r].full;
      EXPECT_TRUE(SameBits(a[r].compressed, b[r].compressed))
          << "scenario " << i << " row " << r;
    }
  }
}

std::shared_ptr<const CompiledSession> ExampleSnapshot(Session* session) {
  session->LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
  session->SetTreeText(data::kFigure2TreeText).CheckOK();
  session->SetBound(6);
  session->Compress().ValueOrDie();
  return session->Snapshot().ValueOrDie();
}

ScenarioSet ExampleScenarios() {
  ScenarioSet scenarios;
  scenarios.Add("baseline");
  scenarios.Add("slump").ValueOrDie().Set("Business", 0.8);
  scenarios.Add("mixed").ValueOrDie().Set("Business", 1.25).Set("Special", 0.9);
  scenarios.Add("leafy").ValueOrDie().Set("p1", 0.7).Set("m3", 1.1);
  return scenarios;
}

TEST(SnapshotTest, PackageRoundTripIsBitIdentical) {
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);

  SnapshotPackage package = MakeSnapshot(*origin);
  std::string encoded = SerializeSnapshot(package);
  SnapshotPackage decoded =
      ParseSnapshot(encoded, "<memory>").ValueOrDie();
  std::shared_ptr<const CompiledSession> replica =
      CompiledSession::FromSnapshot(decoded).ValueOrDie();

  // The replica reproduces the frozen world exactly.
  EXPECT_EQ(replica->pool_size(), origin->pool_size());
  EXPECT_EQ(replica->labels(), origin->labels());
  EXPECT_EQ(replica->full_size(), origin->full_size());
  EXPECT_EQ(replica->compressed_size(), origin->compressed_size());
  EXPECT_EQ(replica->leaf_to_meta(), origin->leaf_to_meta());
  ASSERT_EQ(replica->meta_vars().size(), origin->meta_vars().size());
  for (std::size_t i = 0; i < origin->meta_vars().size(); ++i) {
    EXPECT_EQ(replica->meta_vars()[i].var, origin->meta_vars()[i].var);
    EXPECT_EQ(replica->meta_vars()[i].name, origin->meta_vars()[i].name);
    EXPECT_EQ(replica->meta_vars()[i].leaves, origin->meta_vars()[i].leaves);
  }
  // The rebuilt sweep-side program matches the origin's array for array.
  EXPECT_EQ(replica->sweep_full_program().factors(),
            origin->sweep_full_program().factors());
  EXPECT_EQ(replica->sweep_full_program().coeffs(),
            origin->sweep_full_program().coeffs());

  // Default-scenario results are bit-identical.
  AssignReport origin_assign = origin->Assign(1).ValueOrDie();
  AssignReport replica_assign = replica->Assign(1).ValueOrDie();
  ASSERT_EQ(origin_assign.delta.rows.size(),
            replica_assign.delta.rows.size());
  for (std::size_t r = 0; r < origin_assign.delta.rows.size(); ++r) {
    EXPECT_TRUE(SameBits(origin_assign.delta.rows[r].full,
                         replica_assign.delta.rows[r].full));
    EXPECT_TRUE(SameBits(origin_assign.delta.rows[r].compressed,
                         replica_assign.delta.rows[r].compressed));
  }

  // Batched results are bit-identical under every sweep engine.
  ScenarioSet scenarios = ExampleScenarios();
  for (BatchOptions::Sweep sweep :
       {BatchOptions::Sweep::kBlocked, BatchOptions::Sweep::kSparseDelta,
        BatchOptions::Sweep::kDenseCopy}) {
    BatchOptions options;
    options.sweep = sweep;
    ExpectBatchBitIdentical(
        origin->AssignBatch(scenarios, options).ValueOrDie(),
        replica->AssignBatch(scenarios, options).ValueOrDie());
  }
}

TEST(SnapshotTest, FileRoundTripAndReplicaIsolation) {
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  const std::string path = ::testing::TempDir() + "/cobra_snapshot_test.bin";
  ASSERT_TRUE(SaveSnapshot(*origin, path).ok());

  std::shared_ptr<const CompiledSession> replica =
      LoadSnapshot(path).ValueOrDie();
  // The replica's pool is its own: variables interned into the origin pool
  // after the save are unknown to it, like on a real second machine.
  session.mutable_pool()->Intern("later_variable");
  EXPECT_FALSE(replica->pool().Contains("later_variable"));

  ScenarioSet scenarios = ExampleScenarios();
  ExpectBatchBitIdentical(origin->AssignBatch(scenarios).ValueOrDie(),
                          replica->AssignBatch(scenarios).ValueOrDie());
}

TEST(SnapshotTest, LoadReportsMissingEmptyTruncatedAndCorrupted) {
  const std::string dir = ::testing::TempDir();

  // Missing file: the error names the path.
  util::Result<std::shared_ptr<const CompiledSession>> missing =
      LoadSnapshot(dir + "/no_such_snapshot.bin");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("no_such_snapshot.bin"),
            std::string::npos);
  // Classification contract: a missing file is transient (the publisher may
  // not have renamed the artifact into place yet) — retryable.
  EXPECT_EQ(missing.status().code(), util::StatusCode::kUnavailable);
  EXPECT_TRUE(util::IsRetryable(missing.status()));

  // Empty file.
  const std::string empty_path = dir + "/empty_snapshot.bin";
  ASSERT_TRUE(util::WriteFile(empty_path, "").ok());
  util::Result<std::shared_ptr<const CompiledSession>> empty =
      LoadSnapshot(empty_path);
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().message().find(empty_path), std::string::npos);
  EXPECT_NE(empty.status().message().find("empty"), std::string::npos);
  // An empty file is what an in-progress write looks like: transient.
  EXPECT_EQ(empty.status().code(), util::StatusCode::kUnavailable);

  // Not a snapshot at all.
  const std::string garbage_path = dir + "/garbage_snapshot.bin";
  ASSERT_TRUE(
      util::WriteFile(garbage_path, "this is not a snapshot file at all")
          .ok());
  util::Result<std::shared_ptr<const CompiledSession>> garbage =
      LoadSnapshot(garbage_path);
  ASSERT_FALSE(garbage.ok());
  EXPECT_NE(garbage.status().message().find("magic"), std::string::npos);
  // Wrong magic is permanent corruption, never worth a retry.
  EXPECT_EQ(garbage.status().code(), util::StatusCode::kDataLoss);
  EXPECT_FALSE(util::IsRetryable(garbage.status()));

  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  const std::string full = SerializeSnapshot(MakeSnapshot(*origin));

  // Every proper prefix must fail cleanly (header-truncated, payload-size
  // mismatch, or mid-field truncation after re-stamping the header).
  for (std::size_t cut : {std::size_t{5}, std::size_t{20}, full.size() / 2,
                          full.size() - 1}) {
    const std::string trunc_path = dir + "/truncated_snapshot.bin";
    ASSERT_TRUE(util::WriteFile(trunc_path, full.substr(0, cut)).ok());
    util::Result<std::shared_ptr<const CompiledSession>> truncated =
        LoadSnapshot(trunc_path);
    ASSERT_FALSE(truncated.ok()) << "prefix of " << cut << " bytes";
    EXPECT_NE(truncated.status().message().find(trunc_path),
              std::string::npos);
    // Every proper prefix reads as a torn write still in progress:
    // transient, so a watcher retries instead of quarantining.
    EXPECT_EQ(truncated.status().code(), util::StatusCode::kUnavailable)
        << "prefix of " << cut << " bytes";
  }

  // A flipped payload byte fails the checksum.
  std::string corrupted = full;
  corrupted[corrupted.size() - 1] ^= 0x40;
  const std::string corrupt_path = dir + "/corrupted_snapshot.bin";
  ASSERT_TRUE(util::WriteFile(corrupt_path, corrupted).ok());
  util::Result<std::shared_ptr<const CompiledSession>> corrupt =
      LoadSnapshot(corrupt_path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.status().message().find("checksum"), std::string::npos);
  // A checksum mismatch at full length is permanent corruption.
  EXPECT_EQ(corrupt.status().code(), util::StatusCode::kDataLoss);
  EXPECT_FALSE(util::IsRetryable(corrupt.status()));

  // A future format version is rejected up front (byte 8 is the version's
  // little-endian low byte).
  std::string future = full;
  future[8] = 99;
  util::Result<SnapshotPackage> versioned = ParseSnapshot(future, "<test>");
  ASSERT_FALSE(versioned.ok());
  EXPECT_NE(versioned.status().message().find("version"), std::string::npos);
  EXPECT_EQ(versioned.status().code(), util::StatusCode::kDataLoss);
}

TEST(SnapshotTest, FromSnapshotRejectsInconsistentPackages) {
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  const SnapshotPackage good = MakeSnapshot(*origin);
  ASSERT_TRUE(CompiledSession::FromSnapshot(good).ok());

  {
    SnapshotPackage bad = good;
    bad.pool_names[2] = bad.pool_names[1];  // duplicate name
    util::Result<std::shared_ptr<const CompiledSession>> result =
        CompiledSession::FromSnapshot(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("duplicate"), std::string::npos);
  }
  {
    SnapshotPackage bad = good;
    bad.leaf_to_meta.pop_back();  // remap shorter than the pool
    EXPECT_FALSE(CompiledSession::FromSnapshot(bad).ok());
  }
  {
    SnapshotPackage bad = good;
    bad.leaf_to_meta[0] = static_cast<prov::VarId>(bad.pool_names.size());
    EXPECT_FALSE(CompiledSession::FromSnapshot(bad).ok());
  }
  {
    SnapshotPackage bad = good;
    bad.labels.push_back("extra_group");
    EXPECT_FALSE(CompiledSession::FromSnapshot(bad).ok());
  }
  {
    SnapshotPackage bad = good;
    bad.default_meta.pop_back();
    EXPECT_FALSE(CompiledSession::FromSnapshot(bad).ok());
  }
  {
    SnapshotPackage bad = good;
    ASSERT_FALSE(bad.meta_vars.empty());
    bad.meta_vars[0].leaves.push_back(
        static_cast<prov::VarId>(bad.pool_names.size() + 7));
    EXPECT_FALSE(CompiledSession::FromSnapshot(bad).ok());
  }
  {
    SnapshotPackage bad = good;
    // Program references a variable beyond the pool.
    ASSERT_FALSE(bad.full_program.factors.empty());
    bad.full_program.factors[0] =
        static_cast<prov::VarId>(bad.pool_names.size());
    EXPECT_FALSE(CompiledSession::FromSnapshot(bad).ok());
  }
  {
    SnapshotPackage bad = good;
    // Malformed compiled arrays are caught by EvalProgram::FromParts.
    bad.compressed_program.poly_starts.back() += 1;
    util::Result<std::shared_ptr<const CompiledSession>> result =
        CompiledSession::FromSnapshot(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("compressed program"),
              std::string::npos);
  }
}

TEST(SnapshotTest, EvalProgramFromPartsValidatesInvariants) {
  // A well-formed single-poly program: 2*x0*x1 + 3*x2.
  std::vector<std::uint32_t> poly_starts = {0, 2};
  std::vector<std::uint32_t> term_starts = {0, 2, 3};
  std::vector<double> coeffs = {2.0, 3.0};
  std::vector<prov::VarId> factors = {0, 1, 2};
  util::Result<prov::EvalProgram> ok = prov::EvalProgram::FromParts(
      poly_starts, term_starts, coeffs, factors);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->NumPolys(), 1u);
  EXPECT_EQ(ok->NumTerms(), 2u);
  EXPECT_EQ(ok->MinValuationSize(), 3u);
  prov::Valuation v(3);
  v.Set(0, 2.0);
  v.Set(2, 5.0);
  std::vector<double> out;
  ok->Eval(v, &out);
  EXPECT_EQ(out, (std::vector<double>{2.0 * 2.0 * 1.0 + 3.0 * 5.0}));

  EXPECT_FALSE(
      prov::EvalProgram::FromParts({}, term_starts, coeffs, factors).ok());
  EXPECT_FALSE(
      prov::EvalProgram::FromParts({0, 3}, term_starts, coeffs, factors)
          .ok());  // poly_starts ends past the terms
  EXPECT_FALSE(
      prov::EvalProgram::FromParts(poly_starts, {0, 2}, coeffs, factors)
          .ok());  // term_starts entry count wrong
  EXPECT_FALSE(
      prov::EvalProgram::FromParts(poly_starts, {0, 2, 9}, coeffs, factors)
          .ok());  // term_starts ends past the factors
  EXPECT_FALSE(prov::EvalProgram::FromParts(poly_starts, {0, 3, 2}, coeffs,
                                            factors)
                   .ok());  // not monotone
  EXPECT_FALSE(prov::EvalProgram::FromParts(poly_starts, term_starts, coeffs,
                                            {0, prov::kInvalidVar, 2})
                   .ok());
}

/// Randomized end-to-end property: random pools, trees, polynomials, bounds
/// and override lists; save -> load -> AssignBatch must be bit-identical to
/// the origin snapshot under all three sweep engines.
TEST(SnapshotTest, RandomizedRoundTripIsBitIdenticalAcrossEngines) {
  util::Rng rng(0xC0BA8A8ULL);
  for (int iteration = 0; iteration < 10; ++iteration) {
    util::Rng it = rng.Fork(static_cast<std::uint64_t>(iteration));

    // Random bucketed abstraction tree over num_vars leaves.
    const std::size_t num_vars =
        static_cast<std::size_t>(it.NextInRange(4, 40));
    const std::size_t bucket = static_cast<std::size_t>(it.NextInRange(2, 6));
    std::string tree_text = "root\n";
    for (std::size_t v = 0; v < num_vars; ++v) {
      if (v % bucket == 0) {
        tree_text += "  G" + std::to_string(v / bucket) + "\n";
      }
      tree_text += "    x" + std::to_string(v) + "\n";
    }

    // Random polynomials: each term is one tree variable (single-tree mode
    // allows at most one per monomial) times a few off-tree multipliers —
    // the shape of the paper's plan × month provenance.
    const std::size_t num_offtree =
        static_cast<std::size_t>(it.NextInRange(1, 4));
    const std::size_t num_polys =
        static_cast<std::size_t>(it.NextInRange(1, 5));
    std::string poly_text;
    for (std::size_t p = 0; p < num_polys; ++p) {
      poly_text += "P" + std::to_string(p) + " =";
      const std::size_t num_terms =
          static_cast<std::size_t>(it.NextInRange(1, 12));
      for (std::size_t t = 0; t < num_terms; ++t) {
        if (t > 0) poly_text += " +";
        poly_text += " " + util::FormatDouble(
                               it.NextDoubleInRange(0.25, 8.0), 6);
        poly_text += " * x" + std::to_string(it.NextBelow(num_vars));
        const std::size_t num_multipliers =
            static_cast<std::size_t>(it.NextInRange(0, 2));
        for (std::size_t f = 0; f < num_multipliers; ++f) {
          poly_text += " * m" + std::to_string(it.NextBelow(num_offtree));
        }
      }
      poly_text += "\n";
    }

    Session session;
    ASSERT_TRUE(session.LoadPolynomialsText(poly_text).ok()) << poly_text;
    ASSERT_TRUE(session.SetTreeText(tree_text).ok()) << tree_text;
    const std::size_t monomials = session.full().TotalMonomials();
    session.SetBound(std::max<std::size_t>(
        1, monomials * static_cast<std::size_t>(it.NextInRange(40, 100)) /
               100));
    util::Result<CompressionReport> report =
        session.Compress(Algorithm::kGreedy);
    if (!report.ok()) {
      session.SetBound(monomials);
      report = session.Compress(Algorithm::kGreedy);
    }
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    std::shared_ptr<const CompiledSession> origin =
        session.Snapshot().ValueOrDie();
    std::shared_ptr<const CompiledSession> replica =
        CompiledSession::FromSnapshot(
            ParseSnapshot(SerializeSnapshot(MakeSnapshot(*origin)),
                          "<property>")
                .ValueOrDie())
            .ValueOrDie();

    // Random override lists over meta-variables and raw pool variables.
    ScenarioSet scenarios;
    const std::size_t num_scenarios =
        static_cast<std::size_t>(it.NextInRange(1, 20));
    const std::vector<MetaVar>& meta = origin->meta_vars();
    for (std::size_t s = 0; s < num_scenarios; ++s) {
      auto handle = scenarios.Add("s" + std::to_string(s)).ValueOrDie();
      const std::size_t num_overrides =
          static_cast<std::size_t>(it.NextInRange(0, 4));
      for (std::size_t o = 0; o < num_overrides; ++o) {
        std::string var;
        if (!meta.empty() && it.NextBool(0.7)) {
          var = meta[it.NextBelow(meta.size())].name;
        } else {
          var = "x" + std::to_string(it.NextBelow(num_vars));
        }
        handle.Set(var, it.NextDoubleInRange(0.5, 1.5));
      }
    }

    for (BatchOptions::Sweep sweep :
         {BatchOptions::Sweep::kBlocked, BatchOptions::Sweep::kSparseDelta,
          BatchOptions::Sweep::kDenseCopy}) {
      BatchOptions options;
      options.sweep = sweep;
      options.block_lanes = it.NextBool(0.5) ? 4 : 8;
      // Exercise the partitioning/splitting schedulers now and then.
      if (it.NextBool(0.3)) options.partition_min_terms = 1;
      if (it.NextBool(0.3)) options.split_min_terms = 1;
      ExpectBatchBitIdentical(
          origin->AssignBatch(scenarios, options).ValueOrDie(),
          replica->AssignBatch(scenarios, options).ValueOrDie());
    }
  }
}

}  // namespace
}  // namespace cobra::core
