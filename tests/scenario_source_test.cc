// Tests for the scenario algebra (core::ScenarioSource and its generator
// combinators) and the streaming sweep (CompiledSession::AssignStream):
// generators must be deterministic and chunking-invariant, streamed rows
// must be bit-identical to materializing the same prefix and running
// AssignBatch, and the top-k/threshold queries must prune work without
// changing the kept results.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <vector>

#include "core/compiled_session.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/example_db.h"
#include "prov/parser.h"
#include "util/rng.h"
#include "verify/verify.h"

namespace cobra::core {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

class ScenarioSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    session_.LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
    session_.SetTreeText(data::kFigure2TreeText).CheckOK();
    session_.SetBound(10);
    session_.Compress().ValueOrDie();
    snapshot_ = session_.Snapshot().ValueOrDie();
    for (const MetaVar& meta : snapshot_->meta_vars()) {
      meta_names_.push_back(meta.name);
    }
    ASSERT_GE(meta_names_.size(), 2u);
  }

  /// Streams `source` under kAll and captures every row, keyed by ordinal.
  struct StreamedRows {
    std::vector<std::vector<double>> full;
    std::vector<std::vector<double>> compressed;
    std::vector<std::string> names;
  };
  StreamedRows StreamAll(const ScenarioSource& source, BatchOptions batch) {
    StreamOptions options;
    options.batch = batch;
    StreamedRows rows;
    auto consumer = [&](const StreamBlockView& view) {
      for (std::size_t i = 0; i < view.count; ++i) {
        EXPECT_EQ(view.full_computed[i], 1);
        rows.full.emplace_back(view.full + i * view.num_groups,
                               view.full + (i + 1) * view.num_groups);
        rows.compressed.emplace_back(
            view.compressed + i * view.num_groups,
            view.compressed + (i + 1) * view.num_groups);
        rows.names.push_back((*view.names)[i]);
      }
      return true;
    };
    util::Result<SweepSummary> summary =
        snapshot_->AssignStream(source, options, consumer);
    EXPECT_TRUE(summary.ok()) << summary.status().ToString();
    EXPECT_EQ(summary->full_rows_skipped, 0u);
    return rows;
  }

  /// Bitwise row comparison against AssignBatch over a materialized set.
  void ExpectBitIdenticalToBatch(const ScenarioSource& source,
                                 BatchOptions batch) {
    const StreamedRows streamed = StreamAll(source, batch);
    ScenarioSet materialized = source.Materialize().ValueOrDie();
    ASSERT_EQ(streamed.full.size(), materialized.size());
    util::Result<BatchAssignReport> report =
        snapshot_->AssignBatch(materialized, batch);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    for (std::size_t i = 0; i < materialized.size(); ++i) {
      const ResultDelta& delta = report->reports[i].delta;
      ASSERT_EQ(delta.rows.size(), streamed.full[i].size());
      EXPECT_EQ(streamed.names[i], materialized.scenario(i).name);
      for (std::size_t g = 0; g < delta.rows.size(); ++g) {
        EXPECT_TRUE(SameBits(streamed.full[i][g], delta.rows[g].full))
            << "scenario " << i << " group " << g;
        EXPECT_TRUE(
            SameBits(streamed.compressed[i][g], delta.rows[g].compressed))
            << "scenario " << i << " group " << g;
      }
    }
  }

  Session session_;
  std::shared_ptr<const CompiledSession> snapshot_;
  std::vector<std::string> meta_names_;
};

TEST_F(ScenarioSourceTest, LinSpaceEndpointsAreExact) {
  const ValueAxis axis = LinSpace("v", 0.7, 1.3, 7);
  ASSERT_EQ(axis.values.size(), 7u);
  EXPECT_EQ(axis.values.front(), 0.7);  // exact, not lo + 6*(hi-lo)/6
  EXPECT_EQ(axis.values.back(), 1.3);
  const ValueAxis one = LinSpace("v", 0.5, 2.0, 1);
  ASSERT_EQ(one.values.size(), 1u);
  EXPECT_EQ(one.values[0], 0.5);
}

TEST_F(ScenarioSourceTest, CartesianEnumeratesLastAxisFastest) {
  auto source =
      CartesianSource::Create(
          {ValueAxis{"a", {1.0, 2.0}}, ValueAxis{"b", {10.0, 20.0, 30.0}}})
          .ValueOrDie();
  EXPECT_EQ(source->size(), 6u);
  EXPECT_EQ(source->max_deltas(), 2u);
  ScenarioSet set = source->Materialize().ValueOrDie();
  ASSERT_EQ(set.size(), 6u);
  // i = 4 decomposes as a=digit 1 (value 2.0), b=digit 1 (value 20.0).
  EXPECT_EQ(set.scenario(4).name, "grid-4");
  ASSERT_EQ(set.scenario(4).deltas.size(), 2u);
  EXPECT_EQ(set.scenario(4).deltas[0].var, "a");
  EXPECT_EQ(set.scenario(4).deltas[0].value, 2.0);
  EXPECT_EQ(set.scenario(4).deltas[1].var, "b");
  EXPECT_EQ(set.scenario(4).deltas[1].value, 20.0);
  // The b axis cycles fastest: consecutive scenarios step b, not a.
  EXPECT_EQ(set.scenario(0).deltas[1].value, 10.0);
  EXPECT_EQ(set.scenario(1).deltas[1].value, 20.0);
  EXPECT_EQ(set.scenario(2).deltas[1].value, 30.0);
}

TEST_F(ScenarioSourceTest, CartesianRejectsMalformedAxes) {
  EXPECT_FALSE(CartesianSource::Create({}).ok());
  EXPECT_FALSE(
      CartesianSource::Create({ValueAxis{"", {1.0}}}).ok());
  EXPECT_FALSE(CartesianSource::Create({ValueAxis{"a", {}}}).ok());
  EXPECT_FALSE(CartesianSource::Create(
                   {ValueAxis{"a", {1.0}}, ValueAxis{"a", {2.0}}})
                   .ok());
  EXPECT_FALSE(
      CartesianSource::Create(
          {ValueAxis{"a", {std::numeric_limits<double>::quiet_NaN()}}})
          .ok());
}

TEST_F(ScenarioSourceTest, SampledIsDeterministicAndChunkingInvariant) {
  auto source = SampledSource::Create({RangeAxis{"x", 0.5, 1.5},
                                       RangeAxis{"y", 0.9, 1.1}},
                                      100, /*seed=*/7)
                    .ValueOrDie();
  ScenarioSet whole;
  ASSERT_TRUE(source->Generate(0, 100, &whole).ok());
  // Same window again: bitwise identical.
  ScenarioSet again;
  ASSERT_TRUE(source->Generate(0, 100, &again).ok());
  // Ragged chunking: 100 = 33 + 33 + 34.
  ScenarioSet chunked;
  ASSERT_TRUE(source->Generate(0, 33, &chunked).ok());
  ASSERT_TRUE(source->Generate(33, 33, &chunked).ok());
  ASSERT_TRUE(source->Generate(66, 34, &chunked).ok());
  ASSERT_EQ(whole.size(), 100u);
  ASSERT_EQ(chunked.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    for (const ScenarioSet* other : {&again, &chunked}) {
      EXPECT_EQ(whole.scenario(i).name, other->scenario(i).name);
      ASSERT_EQ(whole.scenario(i).deltas.size(),
                other->scenario(i).deltas.size());
      for (std::size_t d = 0; d < whole.scenario(i).deltas.size(); ++d) {
        EXPECT_TRUE(SameBits(whole.scenario(i).deltas[d].value,
                             other->scenario(i).deltas[d].value));
      }
    }
    for (const Scenario::Delta& delta : whole.scenario(i).deltas) {
      EXPECT_GE(delta.value, 0.5);
      EXPECT_LE(delta.value, 1.5);
    }
  }
  // A different seed is a different spec: fingerprint and values change.
  auto reseeded = SampledSource::Create({RangeAxis{"x", 0.5, 1.5},
                                         RangeAxis{"y", 0.9, 1.1}},
                                        100, /*seed=*/8)
                      .ValueOrDie();
  EXPECT_NE(source->fingerprint(), reseeded->fingerprint());
}

TEST_F(ScenarioSourceTest, ConcatAndComposeEnumerate) {
  auto left = CartesianSource::Create({ValueAxis{"a", {1.0, 2.0}}}, "left")
                  .ValueOrDie();
  auto right =
      CartesianSource::Create({ValueAxis{"b", {5.0}}}, "right").ValueOrDie();
  auto cat = Concat({left, right}).ValueOrDie();
  EXPECT_EQ(cat->size(), 3u);
  ScenarioSet cat_set = cat->Materialize().ValueOrDie();
  EXPECT_EQ(cat_set.scenario(0).name, "left-0");
  EXPECT_EQ(cat_set.scenario(2).name, "right-0");
  // A window straddling the part boundary must agree with Materialize.
  ScenarioSet straddle;
  ASSERT_TRUE(cat->Generate(1, 2, &straddle).ok());
  EXPECT_EQ(straddle.scenario(0).name, "left-1");
  EXPECT_EQ(straddle.scenario(1).name, "right-0");

  auto composed = Compose(left, right).ValueOrDie();
  EXPECT_EQ(composed->size(), 2u);
  EXPECT_EQ(composed->max_deltas(), 2u);
  ScenarioSet comp_set = composed->Materialize().ValueOrDie();
  EXPECT_EQ(comp_set.scenario(1).name, "left-1+right-0");
  ASSERT_EQ(comp_set.scenario(1).deltas.size(), 2u);
  EXPECT_EQ(comp_set.scenario(1).deltas[0].var, "a");
  EXPECT_EQ(comp_set.scenario(1).deltas[0].value, 2.0);
  EXPECT_EQ(comp_set.scenario(1).deltas[1].var, "b");
}

TEST_F(ScenarioSourceTest, ExplicitSourceStreamMatchesAssignBatch) {
  ScenarioSet set;
  set.Reserve(3);
  set.Add("s0").ValueOrDie().Set(meta_names_[0], 1.2);
  set.Add("s1").ValueOrDie().Set(meta_names_[1], 0.8);
  set.Add("s2").ValueOrDie().Set(meta_names_[0], 0.9).Set(meta_names_[1],
                                                          1.1);
  auto source = ExplicitSource::Create(std::move(set)).ValueOrDie();
  BatchOptions batch;
  batch.stream_block_scenarios = 2;  // ragged: 2 + 1
  ExpectBitIdenticalToBatch(*source, batch);
}

// The tentpole property: for randomized generator specs, engines, and
// window sizes, the streamed rows are bit-identical to materializing the
// source and running AssignBatch over it.
TEST_F(ScenarioSourceTest, RandomizedStreamsBitIdenticalToMaterialized) {
  util::Rng rng(0xC0B7A);
  const BatchOptions::Sweep engines[] = {BatchOptions::Sweep::kAuto,
                                         BatchOptions::Sweep::kBlocked,
                                         BatchOptions::Sweep::kSparseDelta};
  for (int trial = 0; trial < 12; ++trial) {
    // Random spec: a grid, a sample, or their concat/composition.
    const std::size_t steps = 2 + rng.NextU64() % 5;
    auto grid =
        CartesianSource::Create(
            {LinSpace(meta_names_[0], 0.8, 1.2, steps),
             LinSpace(meta_names_[1], 0.9, 1.1, 1 + rng.NextU64() % 3)},
            "g" + std::to_string(trial))
            .ValueOrDie();
    auto sampled =
        SampledSource::Create({RangeAxis{meta_names_[0], 0.7, 1.3}},
                              5 + rng.NextU64() % 20, rng.NextU64(),
                              "m" + std::to_string(trial))
            .ValueOrDie();
    std::shared_ptr<const ScenarioSource> source;
    switch (trial % 4) {
      case 0: source = grid; break;
      case 1: source = sampled; break;
      case 2: source = Concat({grid, sampled}).ValueOrDie(); break;
      default: source = Compose(sampled, grid).ValueOrDie(); break;
    }
    BatchOptions batch;
    batch.sweep = engines[trial % 3];
    batch.num_threads = 1 + trial % 3;
    batch.stream_block_scenarios = 1 + rng.NextU64() % 9;
    // Term splitting slices one polynomial's sum differently for different
    // chunk geometries; disable it so the FP summation order is fixed.
    batch.split_min_terms = std::size_t{1} << 30;
    SCOPED_TRACE("trial " + std::to_string(trial));
    ExpectBitIdenticalToBatch(*source, batch);
  }
}

TEST_F(ScenarioSourceTest, ConsumerStopEndsStreamAfterPrefix) {
  auto source = CartesianSource::Create(
                    {LinSpace(meta_names_[0], 0.8, 1.2, 10)})
                    .ValueOrDie();
  StreamOptions options;
  options.batch.stream_block_scenarios = 3;
  std::size_t blocks_seen = 0;
  auto consumer = [&](const StreamBlockView& view) {
    ++blocks_seen;
    EXPECT_EQ(view.begin, (blocks_seen - 1) * 3u);
    return blocks_seen < 2;  // stop after the second block
  };
  SweepSummary summary =
      snapshot_->AssignStream(*source, options, consumer).ValueOrDie();
  EXPECT_TRUE(summary.stopped_early);
  EXPECT_EQ(blocks_seen, 2u);
  EXPECT_EQ(summary.scenarios, 6u);
  EXPECT_EQ(summary.chunks, 2u);
  EXPECT_EQ(summary.source_size, 10u);
}

TEST_F(ScenarioSourceTest, TopKMatchesFullRankingAndPrunes) {
  auto source = CartesianSource::Create(
                    {LinSpace(meta_names_[0], 0.5, 1.5, 16),
                     LinSpace(meta_names_[1], 0.5, 1.5, 16)})
                    .ValueOrDie();
  // Reference ranking from a full kAll stream.
  StreamOptions all;
  all.batch.stream_block_scenarios = 64;
  std::vector<double> metrics;
  auto capture = [&](const StreamBlockView& view) {
    metrics.insert(metrics.end(), view.metrics, view.metrics + view.count);
    return true;
  };
  snapshot_->AssignStream(*source, all, capture).ValueOrDie();
  ASSERT_EQ(metrics.size(), 256u);

  StreamOptions topk = all;
  topk.query.kind = StreamQuery::Kind::kTopK;
  topk.query.k = 5;
  SweepSummary summary =
      snapshot_->AssignStream(*source, topk).ValueOrDie();
  ASSERT_EQ(summary.entries.size(), 5u);
  // Expected: the 5 largest metrics, ties broken toward earlier ordinals.
  std::vector<std::size_t> order(metrics.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return metrics[a] > metrics[b];
                   });
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(summary.entries[i].index, order[i]) << "rank " << i;
    EXPECT_TRUE(SameBits(summary.entries[i].metric, metrics[order[i]]));
    EXPECT_FALSE(summary.entries[i].full.empty());
    EXPECT_FALSE(summary.entries[i].compressed.empty());
  }
  // Pruning must actually happen on a selective query over 256 scenarios.
  EXPECT_GT(summary.full_rows_skipped, 0u);
  EXPECT_EQ(summary.full_rows_computed + summary.full_rows_skipped, 256u);
}

TEST_F(ScenarioSourceTest, ThresholdMatchesFilterAndCapsEntries) {
  auto source = CartesianSource::Create(
                    {LinSpace(meta_names_[0], 0.5, 1.5, 32)})
                    .ValueOrDie();
  StreamOptions all;
  all.batch.stream_block_scenarios = 8;
  std::vector<double> metrics;
  auto capture = [&](const StreamBlockView& view) {
    metrics.insert(metrics.end(), view.metrics, view.metrics + view.count);
    return true;
  };
  SweepSummary base = snapshot_->AssignStream(*source, all, capture)
                          .ValueOrDie();
  const double cutoff = (base.metric_min + base.metric_max) / 2.0;
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    if (metrics[i] >= cutoff) expected.push_back(i);
  }
  ASSERT_FALSE(expected.empty());
  ASSERT_LT(expected.size(), metrics.size());

  StreamOptions threshold = all;
  threshold.query.kind = StreamQuery::Kind::kThreshold;
  threshold.query.cutoff = cutoff;
  SweepSummary summary =
      snapshot_->AssignStream(*source, threshold).ValueOrDie();
  EXPECT_EQ(summary.matched, expected.size());
  ASSERT_EQ(summary.entries.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(summary.entries[i].index, expected[i]);
    EXPECT_FALSE(summary.entries[i].full.empty());
  }
  EXPECT_GT(summary.full_rows_skipped, 0u);

  // max_entries caps the materialized entries but not the match count.
  threshold.query.max_entries = 2;
  SweepSummary capped =
      snapshot_->AssignStream(*source, threshold).ValueOrDie();
  EXPECT_EQ(capped.matched, expected.size());
  ASSERT_EQ(capped.entries.size(), 2u);
  EXPECT_EQ(capped.entries[0].index, expected[0]);
  EXPECT_EQ(capped.entries[1].index, expected[1]);
}

TEST_F(ScenarioSourceTest, SampledSweepIsThreadCountInvariant) {
  auto source = SampledSource::Create(
                    {RangeAxis{meta_names_[0], 0.8, 1.2},
                     RangeAxis{meta_names_[1], 0.9, 1.1}},
                    64, /*seed=*/42)
                    .ValueOrDie();
  BatchOptions one;
  one.num_threads = 1;
  one.stream_block_scenarios = 16;
  one.split_min_terms = std::size_t{1} << 30;
  BatchOptions four = one;
  four.num_threads = 4;
  const StreamedRows a = StreamAll(*source, one);
  const StreamedRows b = StreamAll(*source, four);
  ASSERT_EQ(a.full.size(), b.full.size());
  for (std::size_t i = 0; i < a.full.size(); ++i) {
    EXPECT_EQ(a.names[i], b.names[i]);
    for (std::size_t g = 0; g < a.full[i].size(); ++g) {
      EXPECT_TRUE(SameBits(a.full[i][g], b.full[i][g]));
      EXPECT_TRUE(SameBits(a.compressed[i][g], b.compressed[i][g]));
    }
  }
}

TEST_F(ScenarioSourceTest, DenseCopyEngineIsNotStreamable) {
  auto source = CartesianSource::Create(
                    {LinSpace(meta_names_[0], 0.9, 1.1, 4)})
                    .ValueOrDie();
  StreamOptions options;
  options.batch.sweep = BatchOptions::Sweep::kDenseCopy;
  util::Result<SweepSummary> result =
      snapshot_->AssignStream(*source, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("kDenseCopy"), std::string::npos);

  options.batch.sweep = BatchOptions::Sweep::kAuto;
  options.batch.stream_block_scenarios = 0;
  result = snapshot_->AssignStream(*source, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("stream_block_scenarios"),
            std::string::npos);
}

TEST_F(ScenarioSourceTest, ScenarioSetReserveAndDuplicateRejection) {
  ScenarioSet set;
  set.Reserve(4);
  set.Add("a").ValueOrDie().Set("x", 1.0);
  util::Result<ScenarioSet::Handle> dup = set.Add("a");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(set.size(), 1u);
  // Clear() forgets the names too.
  set.Clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_TRUE(set.Add("a").ok());
}

// Hostile sources for the VerifySource audit. Each violates exactly one
// clause of the ScenarioSource contract.
class NanDeltaSource : public ScenarioSource {
 public:
  std::uint64_t size() const override { return 8; }
  std::size_t max_deltas() const override { return 1; }
  SourceFingerprint fingerprint() const override { return {1, 2}; }
  util::Status Generate(std::uint64_t begin, std::uint64_t count,
                        ScenarioSet* out) const override {
    if (begin + count > size()) {
      return util::Status::InvalidArgument("window out of range");
    }
    for (std::uint64_t i = begin; i < begin + count; ++i) {
      out->Add("nan-" + std::to_string(i))
          .ValueOrDie()
          .Set("x", i == 3 ? std::numeric_limits<double>::quiet_NaN()
                           : 1.0);
    }
    return util::Status::OK();
  }
};

class NondeterministicSource : public ScenarioSource {
 public:
  std::uint64_t size() const override { return 8; }
  std::size_t max_deltas() const override { return 1; }
  SourceFingerprint fingerprint() const override { return {3, 4}; }
  util::Status Generate(std::uint64_t begin, std::uint64_t count,
                        ScenarioSet* out) const override {
    if (begin + count > size()) {
      return util::Status::InvalidArgument("window out of range");
    }
    ++calls_;
    for (std::uint64_t i = begin; i < begin + count; ++i) {
      out->Add("nd-" + std::to_string(i))
          .ValueOrDie()
          .Set("x", static_cast<double>(calls_));
    }
    return util::Status::OK();
  }

 private:
  mutable int calls_ = 0;
};

class ChunkSkewedSource : public ScenarioSource {
 public:
  std::uint64_t size() const override { return 8; }
  std::size_t max_deltas() const override { return 1; }
  SourceFingerprint fingerprint() const override { return {5, 6}; }
  util::Status Generate(std::uint64_t begin, std::uint64_t count,
                        ScenarioSet* out) const override {
    if (begin + count > size()) {
      return util::Status::InvalidArgument("window out of range");
    }
    for (std::uint64_t i = begin; i < begin + count; ++i) {
      // Depends on the window start, not the ordinal: chunking changes
      // the output, which VerifySource must catch.
      out->Add("cs-" + std::to_string(i))
          .ValueOrDie()
          .Set("x", static_cast<double>(begin) + 1.0);
    }
    return util::Status::OK();
  }
};

TEST_F(ScenarioSourceTest, VerifySourceCatchesContractViolations) {
  auto good = CartesianSource::Create(
                  {LinSpace(meta_names_[0], 0.9, 1.1, 5)})
                  .ValueOrDie();
  EXPECT_TRUE(verify::VerifySource(*good).ok());
  auto sampled = SampledSource::Create({RangeAxis{"x", 0.0, 1.0}}, 1000, 9)
                     .ValueOrDie();
  EXPECT_TRUE(verify::VerifySource(*sampled).ok());

  EXPECT_FALSE(verify::VerifySource(NanDeltaSource()).ok());
  EXPECT_FALSE(verify::VerifySource(NondeterministicSource()).ok());
  EXPECT_FALSE(verify::VerifySource(ChunkSkewedSource()).ok());

  // AssignStream runs the same audit at its trust boundary (always in
  // debug builds, via verify_plans in release).
  StreamOptions options;
  options.batch.verify_plans = true;
  util::Result<SweepSummary> result =
      snapshot_->AssignStream(NanDeltaSource(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(ScenarioSourceTest, FingerprintsDistinguishSpecs) {
  auto a = CartesianSource::Create({LinSpace("x", 0.9, 1.1, 5)})
               .ValueOrDie();
  auto b = CartesianSource::Create({LinSpace("x", 0.9, 1.1, 6)})
               .ValueOrDie();
  auto c = CartesianSource::Create({LinSpace("y", 0.9, 1.1, 5)})
               .ValueOrDie();
  EXPECT_EQ(a->fingerprint(), CartesianSource::Create(
                                  {LinSpace("x", 0.9, 1.1, 5)})
                                  .ValueOrDie()
                                  ->fingerprint());
  EXPECT_NE(a->fingerprint(), b->fingerprint());
  EXPECT_NE(a->fingerprint(), c->fingerprint());
  // Combinators fold their children's fingerprints.
  EXPECT_NE(Concat({a, b}).ValueOrDie()->fingerprint(),
            Concat({b, a}).ValueOrDie()->fingerprint());
  EXPECT_NE(Compose(a, b).ValueOrDie()->fingerprint(),
            Compose(b, a).ValueOrDie()->fingerprint());
}

}  // namespace
}  // namespace cobra::core
