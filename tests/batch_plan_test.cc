// Tests for the BatchPlan layer: the adaptive (kAuto) engine policy, the
// plan-once/execute-many split, and the fingerprint-keyed plan cache on
// CompiledSession — determinism across thread counts, bit-identity of kAuto
// against every explicit engine and of warm (cached) against cold plans,
// cache hit/miss semantics under scenario-set mutation, uniform BatchOptions
// validation, and an 8-thread concurrency hammer (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_plan.h"
#include "core/compiled_session.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/example_db.h"
#include "util/rng.h"
#include "util/str.h"

namespace cobra::core {
namespace {

void LoadPaperSession(Session* session) {
  session->LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
  session->SetTreeText(data::kFigure2TreeText).CheckOK();
  session->SetBound(10);
  session->Compress().ValueOrDie();
}

ScenarioSet MakeScenarios(const CompiledSession& snapshot, std::size_t n) {
  const std::vector<MetaVar>& meta = snapshot.meta_vars();
  EXPECT_FALSE(meta.empty());
  ScenarioSet set;
  for (std::size_t i = 0; i < n; ++i) {
    auto s = set.Add("scenario-" + std::to_string(i)).ValueOrDie();
    s.Set(meta[i % meta.size()].name, 1.0 + 0.05 * static_cast<double>(i + 1));
    if (meta.size() > 1) {
      s.Set(meta[(i + 1) % meta.size()].name,
            1.0 - 0.02 * static_cast<double>(i + 1));
    }
  }
  return set;
}

void ExpectBatchBitIdentical(const BatchAssignReport& a,
                             const BatchAssignReport& b) {
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (std::size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i].delta.rows;
    const auto& rb = b.reports[i].delta.rows;
    ASSERT_EQ(ra.size(), rb.size()) << "scenario " << i;
    for (std::size_t r = 0; r < ra.size(); ++r) {
      EXPECT_EQ(ra[r].full, rb[r].full) << "scenario " << i << " row " << r;
      EXPECT_EQ(ra[r].compressed, rb[r].compressed)
          << "scenario " << i << " row " << r;
    }
  }
}

// --------------------------------------------------------------- the policy

TEST(ChooseAutoEngineTest, TinyProgramsFallBackToSparse) {
  // Below the weight threshold the per-batch fixed costs dominate: sparse.
  EXPECT_EQ(ChooseAutoEngine(10, 1024, 2).engine,
            BatchOptions::Sweep::kSparseDelta);
  EXPECT_EQ(ChooseAutoEngine(10, 1024, 2).lanes, 1u);
  // A single scenario has nothing to block with.
  EXPECT_EQ(ChooseAutoEngine(1u << 20, 1, 2).engine,
            BatchOptions::Sweep::kSparseDelta);
  // BENCH_a6 measured blocked at 0.79x sparse for 64 scenarios: the batch
  // must be at least 128 scenarios deep before blocking pays for itself.
  EXPECT_EQ(ChooseAutoEngine(1u << 20, 64, 2).engine,
            BatchOptions::Sweep::kSparseDelta);
  EXPECT_EQ(ChooseAutoEngine(1u << 20, 5, 2).engine,
            BatchOptions::Sweep::kSparseDelta);
  // Wide override unions need a proportionally longer scan to amortize.
  EXPECT_EQ(ChooseAutoEngine(4096, 1024, 1000).engine,
            BatchOptions::Sweep::kSparseDelta);
}

TEST(ChooseAutoEngineTest, LargeProgramsBlockAndSizeLanesByScenarioCount) {
  // Deep batches (>= 512 scenarios) take the 16-lane kernel; the 128..511
  // band stays at 8 lanes. 4 lanes is only reachable via explicit
  // block_lanes = 4 — kAuto never picks it (BENCH_a7: 8 lanes already won
  // at 3.54x sparse for 1024 scenarios and 16 extends the same curve).
  EnginePick many = ChooseAutoEngine(1u << 20, 1024, 2);
  EXPECT_EQ(many.engine, BatchOptions::Sweep::kBlocked);
  EXPECT_EQ(many.lanes, 16u);
  EnginePick mid = ChooseAutoEngine(1u << 20, 256, 2);
  EXPECT_EQ(mid.engine, BatchOptions::Sweep::kBlocked);
  EXPECT_EQ(mid.lanes, 8u);
  EnginePick edge = ChooseAutoEngine(1u << 20, 128, 2);
  EXPECT_EQ(edge.engine, BatchOptions::Sweep::kBlocked);
  EXPECT_EQ(edge.lanes, 8u);
}

TEST(ChooseAutoLayoutTest, SoAWhenReLayoutAmortizes) {
  // The SoA image is an O(program) copy at plan time; it is only worth
  // building when weight x scenarios clears the amortization threshold.
  EXPECT_EQ(ChooseAutoLayout(1u << 20, 1024), prov::EvalLayout::kSoA);
  EXPECT_EQ(ChooseAutoLayout(1u << 10, 1u << 10), prov::EvalLayout::kSoA);
  EXPECT_EQ(ChooseAutoLayout(1u << 10, (1u << 10) - 1),
            prov::EvalLayout::kAoS);
  EXPECT_EQ(ChooseAutoLayout(64, 128), prov::EvalLayout::kAoS);
  EXPECT_EQ(ChooseAutoLayout(0, 1024), prov::EvalLayout::kAoS);
  // The product must not overflow its way under the threshold.
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_EQ(ChooseAutoLayout(huge, huge), prov::EvalLayout::kSoA);
}

TEST(BatchPlanTest, AutoChoiceIsDeterministicAcrossThreadCounts) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(*snapshot, 9);

  BatchOptions::Sweep engine{};
  std::size_t lanes = 0;
  bool first = true;
  for (std::size_t threads : {1u, 2u, 3u, 8u, 16u}) {
    BatchOptions options;
    options.num_threads = threads;
    auto plan = snapshot->PlanBatch(scenarios, options).ValueOrDie();
    EXPECT_NE(plan->engine(), BatchOptions::Sweep::kAuto);
    if (first) {
      engine = plan->engine();
      lanes = plan->lanes();
      first = false;
    } else {
      EXPECT_EQ(plan->engine(), engine) << "threads=" << threads;
      EXPECT_EQ(plan->lanes(), lanes) << "threads=" << threads;
    }
  }
}

// ------------------------------------------------------------- bit-identity

TEST(BatchPlanTest, AutoBitIdenticalToEveryExplicitEngine) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(*snapshot, 11);

  BatchAssignReport auto_batch = snapshot->AssignBatch(scenarios).ValueOrDie();
  EXPECT_NE(auto_batch.engine, BatchOptions::Sweep::kAuto);

  for (BatchOptions::Sweep sweep :
       {BatchOptions::Sweep::kBlocked, BatchOptions::Sweep::kSparseDelta,
        BatchOptions::Sweep::kDenseCopy}) {
    BatchOptions options;
    options.sweep = sweep;
    BatchAssignReport pinned =
        snapshot->AssignBatch(scenarios, options).ValueOrDie();
    EXPECT_EQ(pinned.engine, sweep);
    ExpectBatchBitIdentical(auto_batch, pinned);
  }
}

// ---------------------------------------------------------------- the cache

TEST(BatchPlanTest, ReplayHitsTheCacheAndReturnsTheSamePlan) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(*snapshot, 6);

  CompiledSession::PlanCacheStats before = snapshot->plan_cache_stats();
  EXPECT_EQ(before.entries, 0u);

  bool hit = true;
  auto cold = snapshot->PlanBatch(scenarios, {}, &hit).ValueOrDie();
  EXPECT_FALSE(hit);
  auto warm = snapshot->PlanBatch(scenarios, {}, &hit).ValueOrDie();
  EXPECT_TRUE(hit);
  EXPECT_EQ(cold.get(), warm.get());  // literally the same compiled plan

  CompiledSession::PlanCacheStats after = snapshot->plan_cache_stats();
  EXPECT_EQ(after.entries, 1u);
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses + 1);

  // AssignBatch reports the hit.
  BatchAssignReport replay = snapshot->AssignBatch(scenarios).ValueOrDie();
  EXPECT_TRUE(replay.plan_cache_hit);

  // The cached-plan table describes the entry.
  std::vector<CompiledSession::CachedPlanInfo> table = snapshot->CachedPlans();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].fingerprint, cold->fingerprint().ToHex());
  EXPECT_EQ(table[0].engine, cold->engine());
  EXPECT_EQ(table[0].lanes, cold->lanes());
  EXPECT_EQ(table[0].tiles, cold->num_tiles());
  EXPECT_EQ(table[0].scenarios, 6u);

  snapshot->ClearPlanCache();
  EXPECT_EQ(snapshot->plan_cache_stats().entries, 0u);
  BatchAssignReport recold = snapshot->AssignBatch(scenarios).ValueOrDie();
  EXPECT_FALSE(recold.plan_cache_hit);
  ExpectBatchBitIdentical(replay, recold);
}

TEST(BatchPlanTest, MutatingTheScenarioSetChangesTheFingerprint) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(*snapshot, 4);

  PlanFingerprint original = FingerprintScenarios(scenarios);
  EXPECT_EQ(FingerprintScenarios(scenarios), original);  // content-stable

  bool hit = true;
  snapshot->PlanBatch(scenarios, {}, &hit).ValueOrDie();
  EXPECT_FALSE(hit);
  snapshot->PlanBatch(scenarios, {}, &hit).ValueOrDie();
  EXPECT_TRUE(hit);

  // Mutate after planning: a new delta must change the fingerprint and miss.
  const std::string meta_name = snapshot->meta_vars().front().name;
  scenarios.Add("late-addition").ValueOrDie().Set(meta_name, 0.5);
  EXPECT_NE(FingerprintScenarios(scenarios), original);
  snapshot->PlanBatch(scenarios, {}, &hit).ValueOrDie();
  EXPECT_FALSE(hit);

  // Changing one delta value (same shape) also re-fingerprints.
  ScenarioSet tweaked = MakeScenarios(*snapshot, 4);
  PlanFingerprint base_fp = FingerprintScenarios(tweaked);
  ScenarioSet tweaked2 = MakeScenarios(*snapshot, 4);
  tweaked2.Add(Scenario{"x", {{meta_name, 1.0}}});
  tweaked.Add(Scenario{"x", {{meta_name, 1.0000001}}});
  EXPECT_NE(FingerprintScenarios(tweaked), FingerprintScenarios(tweaked2));
  EXPECT_NE(FingerprintScenarios(tweaked), base_fp);

  // A different base valuation must not reuse the old plan either.
  ScenarioSet replay = MakeScenarios(*snapshot, 4);
  snapshot->PlanBatch(replay, {}, &hit).ValueOrDie();
  prov::Valuation other(snapshot->pool_size());
  for (std::size_t v = 0; v < snapshot->pool_size(); ++v) {
    other.Set(static_cast<prov::VarId>(v), 1.0);
  }
  other.Set(snapshot->meta_vars().front().var, 2.0);
  snapshot->PlanBatch(replay, other, {}, &hit).ValueOrDie();
  EXPECT_FALSE(hit);
}

// --------------------------------------------------------------- validation

TEST(BatchPlanTest, InvalidOptionsNameTheFieldAndAcceptedValues) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(*snapshot, 3);

  BatchOptions bad_lanes;
  bad_lanes.sweep = BatchOptions::Sweep::kBlocked;
  bad_lanes.block_lanes = 3;
  util::Result<BatchAssignReport> r1 =
      snapshot->AssignBatch(scenarios, bad_lanes);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(r1.status().message().find("BatchOptions.block_lanes"),
            std::string::npos);
  EXPECT_NE(r1.status().message().find("4, 8 or 16"), std::string::npos);

  BatchOptions bad_sweep;
  bad_sweep.sweep = static_cast<BatchOptions::Sweep>(99);
  util::Result<BatchAssignReport> r2 =
      snapshot->AssignBatch(scenarios, bad_sweep);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(r2.status().message().find("BatchOptions.sweep"),
            std::string::npos);
  EXPECT_NE(r2.status().message().find("kAuto"), std::string::npos);

  // The lane knob belongs to kBlocked: kAuto picks lanes itself and the
  // scalar engines ignore it.
  for (BatchOptions::Sweep sweep :
       {BatchOptions::Sweep::kAuto, BatchOptions::Sweep::kSparseDelta,
        BatchOptions::Sweep::kDenseCopy}) {
    BatchOptions ignored;
    ignored.sweep = sweep;
    ignored.block_lanes = 3;
    EXPECT_TRUE(snapshot->AssignBatch(scenarios, ignored).ok())
        << SweepName(sweep);
  }

  // The prefetch knob is a distance in cache lines, capped at 64.
  BatchOptions bad_prefetch;
  bad_prefetch.prefetch_distance = 65;
  util::Result<BatchAssignReport> r3 =
      snapshot->AssignBatch(scenarios, bad_prefetch);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(r3.status().message().find("BatchOptions.prefetch_distance"),
            std::string::npos);
  EXPECT_NE(r3.status().message().find("0 to 64"), std::string::npos);

  // Validation happens at plan time: PlanBatch reports the same errors.
  EXPECT_FALSE(snapshot->PlanBatch(scenarios, bad_lanes).ok());
  EXPECT_FALSE(snapshot->PlanBatch(scenarios, bad_prefetch).ok());
  EXPECT_FALSE(snapshot->PlanBatch(ScenarioSet(), BatchOptions()).ok());
}

// ------------------------------------------------------------------ layout

TEST(BatchPlanTest, LayoutResolvesAndImagesFollowThePlan) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(*snapshot, 6);

  // Explicit SoA on the blocked engine: both execution images exist and
  // carry the SoA tag.
  BatchOptions soa;
  soa.sweep = BatchOptions::Sweep::kBlocked;
  soa.layout = BatchOptions::Layout::kSoA;
  auto soa_plan = snapshot->PlanBatch(scenarios, soa).ValueOrDie();
  EXPECT_EQ(soa_plan->layout(), prov::EvalLayout::kSoA);
  ASSERT_NE(soa_plan->core()->full_image(), nullptr);
  ASSERT_NE(soa_plan->core()->compressed_image(), nullptr);
  EXPECT_EQ(soa_plan->core()->full_image()->layout(), prov::EvalLayout::kSoA);
  EXPECT_EQ(soa_plan->core()->compressed_image()->layout(),
            prov::EvalLayout::kSoA);

  // Explicit AoS on the blocked engine: no images are built.
  BatchOptions aos;
  aos.sweep = BatchOptions::Sweep::kBlocked;
  aos.layout = BatchOptions::Layout::kAoS;
  auto aos_plan = snapshot->PlanBatch(scenarios, aos).ValueOrDie();
  EXPECT_EQ(aos_plan->layout(), prov::EvalLayout::kAoS);
  EXPECT_EQ(aos_plan->core()->full_image(), nullptr);
  EXPECT_EQ(aos_plan->core()->compressed_image(), nullptr);

  // The scalar engines have no SoA kernels: an explicit kSoA resolves to
  // AoS silently — the layout is a performance hint, never an error.
  BatchOptions scalar;
  scalar.sweep = BatchOptions::Sweep::kSparseDelta;
  scalar.layout = BatchOptions::Layout::kSoA;
  auto scalar_plan = snapshot->PlanBatch(scenarios, scalar).ValueOrDie();
  EXPECT_EQ(scalar_plan->layout(), prov::EvalLayout::kAoS);
  EXPECT_EQ(scalar_plan->core()->full_image(), nullptr);

  // Layout is part of the plan-cache key: SoA and AoS plans of the same
  // scenario set are distinct cache entries.
  bool hit = true;
  snapshot->PlanBatch(scenarios, soa, &hit).ValueOrDie();
  EXPECT_TRUE(hit);
  BatchOptions soa_far_prefetch = soa;
  soa_far_prefetch.prefetch_distance = 16;
  snapshot->PlanBatch(scenarios, soa_far_prefetch, &hit).ValueOrDie();
  EXPECT_FALSE(hit);

  // SoA execution is bit-identical to AoS execution of the same batch.
  BatchAssignReport from_soa =
      snapshot->AssignBatch(scenarios, soa).ValueOrDie();
  BatchAssignReport from_aos =
      snapshot->AssignBatch(scenarios, aos).ValueOrDie();
  EXPECT_EQ(from_soa.layout, prov::EvalLayout::kSoA);
  EXPECT_EQ(from_aos.layout, prov::EvalLayout::kAoS);
  ExpectBatchBitIdentical(from_soa, from_aos);
}

TEST(BatchPlanTest, ExecuteRejectsAForeignPlan) {
  Session a;
  LoadPaperSession(&a);
  auto snapshot_a = a.Snapshot().ValueOrDie();
  Session b;
  LoadPaperSession(&b);
  auto snapshot_b = b.Snapshot().ValueOrDie();

  ScenarioSet scenarios = MakeScenarios(*snapshot_a, 2);
  auto plan = snapshot_a->PlanBatch(scenarios).ValueOrDie();
  EXPECT_TRUE(snapshot_a->Execute(*plan).ok());
  util::Result<BatchAssignReport> foreign = snapshot_b->Execute(*plan);
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.status().code(), util::StatusCode::kInvalidArgument);
}

// Cached plans reference their session weakly: a snapshot that ran
// AssignBatch (so its cache holds plans) must still be destroyed when the
// last external reference drops — a strong back-reference would be a
// shared_ptr cycle and every snapshot generation would leak.
TEST(BatchPlanTest, CachedPlansDoNotKeepTheSessionAlive) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios = MakeScenarios(*snapshot, 4);
  auto plan = snapshot->PlanBatch(scenarios).ValueOrDie();
  EXPECT_EQ(snapshot->plan_cache_stats().entries, 1u);
  EXPECT_NE(plan->session(), nullptr);

  std::weak_ptr<const CompiledSession> weak = snapshot;
  snapshot.reset();
  session.SetBound(4);                // drop the Session's cached snapshot
  session.Compress().ValueOrDie();
  EXPECT_TRUE(weak.expired());        // the plan cache did not pin it
  EXPECT_EQ(plan->session(), nullptr);  // a held plan observes the loss
}

// --------------------------------------------- randomized cold-vs-warm sweep

/// Random scenario sets over the paper session: for every engine (kAuto and
/// the three explicit ones), a cold plan (cache cleared), a warm replay
/// (cached plan) and a direct PlanBatch+Execute round must produce exactly
/// the same bits.
TEST(BatchPlanTest, RandomizedColdAndWarmPlansAreBitIdentical) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  const std::vector<MetaVar>& meta = snapshot->meta_vars();
  ASSERT_FALSE(meta.empty());

  util::Rng rng(0xBA7C471AULL);
  for (int iteration = 0; iteration < 8; ++iteration) {
    util::Rng it = rng.Fork(static_cast<std::uint64_t>(iteration));
    ScenarioSet scenarios;
    const std::size_t n = static_cast<std::size_t>(it.NextInRange(1, 24));
    for (std::size_t s = 0; s < n; ++s) {
      auto handle = scenarios.Add("s" + std::to_string(s)).ValueOrDie();
      const std::size_t overrides =
          static_cast<std::size_t>(it.NextInRange(0, 5));
      for (std::size_t o = 0; o < overrides; ++o) {
        handle.Set(meta[it.NextBelow(meta.size())].name,
                   it.NextDoubleInRange(0.5, 1.5));
      }
    }

    BatchAssignReport reference;
    bool have_reference = false;
    for (BatchOptions::Sweep sweep :
         {BatchOptions::Sweep::kAuto, BatchOptions::Sweep::kBlocked,
          BatchOptions::Sweep::kSparseDelta,
          BatchOptions::Sweep::kDenseCopy}) {
      BatchOptions options;
      options.sweep = sweep;
      if (it.NextBool(0.3)) options.partition_min_terms = 1;
      options.num_threads = 1 + static_cast<std::size_t>(it.NextBelow(8));

      snapshot->ClearPlanCache();
      BatchAssignReport cold =
          snapshot->AssignBatch(scenarios, options).ValueOrDie();
      EXPECT_FALSE(cold.plan_cache_hit);
      BatchAssignReport warm =
          snapshot->AssignBatch(scenarios, options).ValueOrDie();
      EXPECT_TRUE(warm.plan_cache_hit);
      ExpectBatchBitIdentical(cold, warm);

      auto plan = snapshot->PlanBatch(scenarios, options).ValueOrDie();
      BatchAssignReport direct = snapshot->Execute(*plan).ValueOrDie();
      ExpectBatchBitIdentical(cold, direct);

      if (!have_reference) {
        reference = cold;
        have_reference = true;
      } else {
        ExpectBatchBitIdentical(reference, cold);
      }
    }
  }
}

// ------------------------------------------------------------- concurrency

/// Eight threads hammer one snapshot's plan cache with overlapping scenario
/// sets — replays (shared-lock hits), novel sets (exclusive-lock inserts)
/// and periodic ClearPlanCache calls — while every result must stay
/// bit-identical to a single-threaded baseline. Run under ThreadSanitizer
/// in CI.
TEST(BatchPlanTest, PlanCacheConcurrentHammer) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();

  constexpr std::size_t kSets = 4;
  std::vector<ScenarioSet> sets;
  std::vector<BatchAssignReport> baselines;
  for (std::size_t i = 0; i < kSets; ++i) {
    sets.push_back(MakeScenarios(*snapshot, 3 + i * 2));
    baselines.push_back(snapshot->AssignBatch(sets[i]).ValueOrDie());
  }
  snapshot->ClearPlanCache();

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIterations = 24;
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w]() {
      for (std::size_t i = 0; i < kIterations && !failed.load(); ++i) {
        const std::size_t which = (w + i) % kSets;
        if (w == 0 && i % 7 == 3) snapshot->ClearPlanCache();
        util::Result<BatchAssignReport> got =
            snapshot->AssignBatch(sets[which]);
        if (!got.ok()) {
          failed.store(true);
          break;
        }
        const BatchAssignReport& want = baselines[which];
        if (got->reports.size() != want.reports.size()) {
          failed.store(true);
          break;
        }
        for (std::size_t s = 0; s < want.reports.size(); ++s) {
          const auto& ra = got->reports[s].delta.rows;
          const auto& rb = want.reports[s].delta.rows;
          if (ra.size() != rb.size()) {
            failed.store(true);
            break;
          }
          for (std::size_t r = 0; r < ra.size(); ++r) {
            if (ra[r].full != rb[r].full ||
                ra[r].compressed != rb[r].compressed) {
              failed.store(true);
              break;
            }
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_FALSE(failed.load());
  CompiledSession::PlanCacheStats stats = snapshot->plan_cache_stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace cobra::core
