// Tests for the immutable CompiledSession serving layer: snapshot identity
// with the Session wrappers, sparse-override equivalence against the dense
// copy-based engine (including exponent-expanded factors and variables
// outside the abstraction), intra-program partitioning determinism, and
// lock-free concurrent serving (N threads x M scenarios must reproduce the
// sequential results exactly). The concurrency test is the one the TSan CI
// job runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/compiled_session.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/example_db.h"

namespace cobra::core {
namespace {

/// A small session whose compression is forced to merge x and y into one
/// meta-variable G, with z and w left outside the abstraction, and an
/// exponent (x*x*x and z*z) so the sparse path exercises repeated factors.
void LoadExponentSession(Session* session) {
  // Single-tree mode allows at most one tree variable per monomial, so x
  // and y never co-occur; exponents come from x^3/y^3/z^2.
  session
      ->LoadPolynomialsText(
          "P1 = 2 * x^3 + 4 * y^3 + 5 * z^2 + 3 * w\n"
          "P2 = x * z + y * z + x + y\n")
      .CheckOK();
  session->SetTreeText("G\n  x\n  y\n").CheckOK();
  // Full size is 8 monomials; only the cut {G} reaches 5 (x^3 and y^3
  // merge into 6*G^3, x*z and y*z into 2*G*z, x and y into 2*G).
  session->SetBound(5);
  session->Compress().ValueOrDie();
  ASSERT_EQ(session->compressed().TotalMonomials(), 5u);
}

void LoadPaperSession(Session* session) {
  session->LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
  session->SetTreeText(data::kFigure2TreeText).CheckOK();
  // Bound 6 selects the cut {Business, Special, p1, p2}, so those
  // meta-variable names are available to scenarios below.
  session->SetBound(6);
  session->Compress().ValueOrDie();
}

std::vector<ResultDelta> SequentialDeltas(Session* session,
                                          const ScenarioSet& scenarios) {
  std::vector<ResultDelta> deltas;
  for (const Scenario& scenario : scenarios.scenarios()) {
    session->ResetMetaValues().CheckOK();
    for (const Scenario::Delta& delta : scenario.deltas) {
      session->SetMetaValue(delta.var, delta.value).CheckOK();
    }
    deltas.push_back(session->Assign(1).ValueOrDie().delta);
  }
  session->ResetMetaValues().CheckOK();
  return deltas;
}

void ExpectBitIdentical(const std::vector<ResultDelta>& want,
                        const BatchAssignReport& got) {
  ASSERT_EQ(got.reports.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    const auto& wr = want[i].rows;
    const auto& gr = got.reports[i].delta.rows;
    ASSERT_EQ(gr.size(), wr.size()) << "scenario " << i;
    for (std::size_t r = 0; r < wr.size(); ++r) {
      EXPECT_EQ(gr[r].label, wr[r].label);
      // EXPECT_EQ, not NEAR: the serving layer promises bit-identity.
      EXPECT_EQ(gr[r].full, wr[r].full) << "scenario " << i << " row " << r;
      EXPECT_EQ(gr[r].compressed, wr[r].compressed)
          << "scenario " << i << " row " << r;
    }
  }
}

TEST(CompiledSessionTest, SnapshotRequiresCompression) {
  Session session;
  EXPECT_EQ(session.Snapshot().status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(CompiledSessionTest, SnapshotIsCachedAndRefreshedOnMetaChange) {
  Session session;
  LoadPaperSession(&session);
  auto a = session.Snapshot().ValueOrDie();
  auto b = session.Snapshot().ValueOrDie();
  EXPECT_EQ(a.get(), b.get());

  session.SetMetaValue("Business", 1.3).CheckOK();
  auto c = session.Snapshot().ValueOrDie();
  EXPECT_NE(a.get(), c.get());
  prov::VarId business = session.pool().Find("Business");
  ASSERT_NE(business, prov::kInvalidVar);
  EXPECT_DOUBLE_EQ(c->default_meta_valuation().Get(business), 1.3);
  // The earlier snapshot is immutable: its defaults are unchanged.
  EXPECT_NE(a->default_meta_valuation().Get(business), 1.3);
}

TEST(CompiledSessionTest, SnapshotAssignMatchesSessionAssign) {
  Session session;
  LoadPaperSession(&session);
  session.SetMetaValue("Business", 1.15).CheckOK();
  AssignReport want = session.Assign(1).ValueOrDie();

  auto snapshot = session.Snapshot().ValueOrDie();
  AssignReport got = snapshot->Assign(1).ValueOrDie();
  ASSERT_EQ(got.delta.rows.size(), want.delta.rows.size());
  for (std::size_t r = 0; r < want.delta.rows.size(); ++r) {
    EXPECT_EQ(got.delta.rows[r].full, want.delta.rows[r].full);
    EXPECT_EQ(got.delta.rows[r].compressed, want.delta.rows[r].compressed);
  }
  EXPECT_EQ(got.full_size, want.full_size);
  EXPECT_EQ(got.compressed_size, want.compressed_size);
}

TEST(CompiledSessionTest, SnapshotSurvivesSessionMutation) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  std::size_t old_compressed = snapshot->compressed_size();

  ScenarioSet scenarios;
  scenarios.Add("boom").ValueOrDie().Set("Business", 1.25);
  BatchAssignReport before = snapshot->AssignBatch(scenarios).ValueOrDie();

  // Recompress the session under a tighter bound: the old snapshot must be
  // unaffected and keep serving the old compression.
  session.SetBound(4);
  session.Compress().ValueOrDie();
  auto fresh = session.Snapshot().ValueOrDie();
  EXPECT_LT(fresh->compressed_size(), old_compressed);

  BatchAssignReport after = snapshot->AssignBatch(scenarios).ValueOrDie();
  EXPECT_EQ(snapshot->compressed_size(), old_compressed);
  ASSERT_EQ(after.reports.size(), before.reports.size());
  for (std::size_t r = 0; r < before.reports[0].delta.rows.size(); ++r) {
    EXPECT_EQ(after.reports[0].delta.rows[r].compressed,
              before.reports[0].delta.rows[r].compressed);
  }
}

TEST(CompiledSessionTest, SparseOverridesMatchSequentialWithExponents) {
  Session session;
  LoadExponentSession(&session);

  ScenarioSet scenarios;
  scenarios.Add("default-noop");                    // empty override list
  scenarios.Add("meta").ValueOrDie().Set("G", 1.5);              // abstracted group
  scenarios.Add("outside").ValueOrDie().Set("z", 0.5);           // out-of-abstraction var
  scenarios.Add("outside2").ValueOrDie().Set("w", 2.5).Set("z", 1.25);
  scenarios.Add("mixed").ValueOrDie().Set("G", 0.8).Set("z", 3.0).Set("w", 0.1);
  scenarios.Add("leaf-under-meta").ValueOrDie().Set("x", 9.0);   // no-op: G wins
  scenarios.Add("repeat").ValueOrDie().Set("G", 2.0).Set("G", 0.25);

  std::vector<ResultDelta> sequential = SequentialDeltas(&session, scenarios);

  auto snapshot = session.Snapshot().ValueOrDie();
  BatchOptions sparse;
  sparse.sweep = BatchOptions::Sweep::kSparseDelta;
  ExpectBitIdentical(sequential,
                     snapshot->AssignBatch(scenarios, sparse).ValueOrDie());

  BatchOptions dense;
  dense.sweep = BatchOptions::Sweep::kDenseCopy;
  ExpectBitIdentical(sequential,
                     snapshot->AssignBatch(scenarios, dense).ValueOrDie());

  // The blocked kernel must reproduce the same bits for both lane widths;
  // 7 scenarios leave a ragged tail at either width.
  for (std::size_t lanes : {4u, 8u}) {
    BatchOptions blocked;
    blocked.sweep = BatchOptions::Sweep::kBlocked;
    blocked.block_lanes = lanes;
    ExpectBitIdentical(
        sequential, snapshot->AssignBatch(scenarios, blocked).ValueOrDie());
  }
}

// Blocked-sweep property check at batch scale: scenario counts chosen to
// cover exact-multiple and ragged tails for both lane widths, across thread
// counts that exercise the (block × range) tiling, must all be bit-identical
// to the sequential path.
TEST(CompiledSessionTest, BlockedSweepBitIdenticalAcrossLaneAndThreadCounts) {
  Session session;
  LoadPaperSession(&session);
  const std::vector<MetaVar>& meta = session.meta_vars();
  ASSERT_FALSE(meta.empty());

  for (std::size_t count : {1u, 4u, 5u, 8u, 13u, 16u}) {
    ScenarioSet scenarios;
    for (std::size_t i = 0; i < count; ++i) {
      auto s = scenarios.Add("s" + std::to_string(i)).ValueOrDie();
      if (i % 3 != 0) {  // every third scenario keeps an empty override list
        s.Set(meta[i % meta.size()].name,
              1.0 + 0.03 * static_cast<double>(i + 1));
      }
    }
    std::vector<ResultDelta> sequential =
        SequentialDeltas(&session, scenarios);
    auto snapshot = session.Snapshot().ValueOrDie();
    for (std::size_t lanes : {4u, 8u}) {
      for (std::size_t threads : {1u, 3u, 8u}) {
        BatchOptions options;
        options.sweep = BatchOptions::Sweep::kBlocked;
        options.block_lanes = lanes;
        options.num_threads = threads;
        options.partition_min_terms = 1;  // force range tiling when spare
        ExpectBitIdentical(
            sequential,
            snapshot->AssignBatch(scenarios, options).ValueOrDie());
      }
    }
  }
}

TEST(CompiledSessionTest, BlockedRejectsBadLaneCount) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  ScenarioSet scenarios;
  scenarios.Add("s").ValueOrDie().Set("Business", 1.1);
  BatchOptions options;
  options.sweep = BatchOptions::Sweep::kBlocked;  // the lane knob's engine
  options.block_lanes = 3;
  util::Result<BatchAssignReport> result =
      snapshot->AssignBatch(scenarios, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(CompiledSessionTest, PartitionedSweepIsDeterministic) {
  Session session;
  LoadPaperSession(&session);
  const std::vector<MetaVar>& meta = session.meta_vars();
  ASSERT_GE(meta.size(), 2u);
  ScenarioSet scenarios;
  scenarios.Add("boom").ValueOrDie().Set(meta[0].name, 1.25);
  scenarios.Add("slump").ValueOrDie().Set(meta[0].name, 0.8).Set(meta[1].name, 0.9);
  std::vector<ResultDelta> sequential = SequentialDeltas(&session, scenarios);

  auto snapshot = session.Snapshot().ValueOrDie();
  for (std::size_t threads : {1u, 3u, 8u, 16u}) {
    BatchOptions options;
    options.num_threads = threads;
    options.partition_min_terms = 1;  // force partitioning, tiny program
    ExpectBitIdentical(
        sequential, snapshot->AssignBatch(scenarios, options).ValueOrDie());
  }
}

/// A session whose provenance is dominated by one polynomial (60 distinct
/// monomials vs a 2-term sibling), with G abstracting {a0, a1}. Bound 61
/// forces the {G} cut. This is the "ungrouped aggregate" shape the
/// term-splitting scheduler fallback exists for.
void LoadDominantPolySession(Session* session) {
  std::string text = "Big = ";
  for (int t = 0; t < 60; ++t) {
    if (t > 0) text += " + ";
    text += std::to_string(t % 9 + 1) + " * a" + std::to_string(t);
  }
  text += "\nSmall = a0 + 3 * z\n";
  session->LoadPolynomialsText(text).CheckOK();
  session->SetTreeText("G\n  a0\n  a1\n").CheckOK();
  session->SetBound(61);
  session->Compress().ValueOrDie();
  ASSERT_FALSE(session->meta_vars().empty());
}

// The term-splitting fallback: with one dominant polynomial and more
// threads than scenario blocks, both scan engines split its term range and
// recover the value by a fixed-order reduction. The result must be
// deterministic (identical bits across repeated runs and across engines),
// tightly accurate against the sequential path, and strictly bit-identical
// again once splitting is disabled.
TEST(CompiledSessionTest, TermSplitFallbackDeterministicAndAccurate) {
  Session session;
  LoadDominantPolySession(&session);
  ScenarioSet scenarios;
  scenarios.Add("boom").ValueOrDie().Set("G", 1.25);
  scenarios.Add("mix").ValueOrDie().Set("G", 0.8).Set("z", 1.5);
  std::vector<ResultDelta> sequential = SequentialDeltas(&session, scenarios);
  auto snapshot = session.Snapshot().ValueOrDie();

  std::vector<BatchAssignReport> split_results;
  for (BatchOptions::Sweep sweep :
       {BatchOptions::Sweep::kBlocked, BatchOptions::Sweep::kSparseDelta}) {
    BatchOptions split;
    split.sweep = sweep;
    split.num_threads = 8;
    split.partition_min_terms = 1;
    split.split_min_terms = 8;
    BatchAssignReport a = snapshot->AssignBatch(scenarios, split).ValueOrDie();
    BatchAssignReport b = snapshot->AssignBatch(scenarios, split).ValueOrDie();
    // Witness that the fallback engaged: term slices raise the tile count
    // to (blocks × [ranges + slices]) ≥ 8, so all 8 workers get work —
    // without splitting this two-poly program caps at 2 ranges per block.
    EXPECT_EQ(a.num_threads, 8u);
    ASSERT_EQ(a.reports.size(), sequential.size());
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
      const auto& ra = a.reports[i].delta.rows;
      const auto& rb = b.reports[i].delta.rows;
      ASSERT_EQ(ra.size(), sequential[i].rows.size());
      ASSERT_EQ(rb.size(), ra.size());
      for (std::size_t r = 0; r < ra.size(); ++r) {
        // Deterministic: repeated runs reproduce the same bits.
        EXPECT_EQ(ra[r].full, rb[r].full);
        EXPECT_EQ(ra[r].compressed, rb[r].compressed);
        // Accurate: the reduction may regroup additions, but only within a
        // tight relative tolerance of the sequential answer.
        const double want_full = sequential[i].rows[r].full;
        const double want_compressed = sequential[i].rows[r].compressed;
        EXPECT_NEAR(ra[r].full, want_full,
                    1e-9 * std::max(1.0, std::fabs(want_full)));
        EXPECT_NEAR(ra[r].compressed, want_compressed,
                    1e-9 * std::max(1.0, std::fabs(want_compressed)));
      }
    }
    split_results.push_back(std::move(a));

    BatchOptions nosplit = split;
    nosplit.split_min_terms = 0;
    ExpectBitIdentical(
        sequential, snapshot->AssignBatch(scenarios, nosplit).ValueOrDie());
  }

  // The blocked and scalar engines slice and reduce identically, so even
  // the split results agree bit for bit across engines.
  const auto& blocked = split_results[0];
  const auto& scalar = split_results[1];
  for (std::size_t i = 0; i < blocked.reports.size(); ++i) {
    const auto& rb = blocked.reports[i].delta.rows;
    const auto& rs = scalar.reports[i].delta.rows;
    ASSERT_EQ(rb.size(), rs.size());
    for (std::size_t r = 0; r < rb.size(); ++r) {
      EXPECT_EQ(rb[r].full, rs[r].full);
      EXPECT_EQ(rb[r].compressed, rs[r].compressed);
    }
  }
}

TEST(CompiledSessionTest, SnapshotSharesPoolAndFreezesItsSize) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  // Shared by pointer, not deep-copied (the old per-snapshot pool copy made
  // Snapshot() O(pool) even when nothing changed).
  EXPECT_EQ(&snapshot->pool(), &session.pool());
  EXPECT_EQ(snapshot->pool_size(), session.pool().size());

  // A variable interned after the snapshot resolves in the shared pool but
  // is outside the snapshot's frozen world: scenario compilation rejects it
  // instead of silently ignoring it (sparse) or aborting (dense).
  session.mutable_pool()->Intern("late_var");
  ScenarioSet scenarios;
  scenarios.Add("late").ValueOrDie().Set("late_var", 2.0);
  for (BatchOptions::Sweep sweep :
       {BatchOptions::Sweep::kBlocked, BatchOptions::Sweep::kSparseDelta,
        BatchOptions::Sweep::kDenseCopy}) {
    BatchOptions options;
    options.sweep = sweep;
    util::Result<BatchAssignReport> result =
        snapshot->AssignBatch(scenarios, options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("after"), std::string::npos);
  }
}

TEST(CompiledSessionTest, LeafToMetaIndirectionCoversPool) {
  Session session;
  LoadExponentSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  const std::vector<prov::VarId>& remap = snapshot->leaf_to_meta();
  ASSERT_GE(remap.size(), snapshot->pool().size());
  prov::VarId x = snapshot->pool().Find("x");
  prov::VarId g = snapshot->pool().Find("G");
  prov::VarId z = snapshot->pool().Find("z");
  ASSERT_NE(x, prov::kInvalidVar);
  ASSERT_NE(g, prov::kInvalidVar);
  ASSERT_NE(z, prov::kInvalidVar);
  EXPECT_EQ(remap[x], g);  // abstracted leaf points at its meta-variable
  EXPECT_EQ(remap[z], z);  // off-tree variable maps to itself
}

// The headline guarantee: one snapshot, shared by N threads with zero
// locks, each thread running batches and single assignments concurrently,
// reproduces the sequential Session results bit for bit. Run under
// ThreadSanitizer in CI.
TEST(CompiledSessionConcurrencyTest, ManyThreadsMatchSequential) {
  Session session;
  LoadPaperSession(&session);

  constexpr std::size_t kScenarios = 12;
  ScenarioSet scenarios;
  const std::vector<MetaVar>& meta = session.meta_vars();
  ASSERT_FALSE(meta.empty());
  for (std::size_t i = 0; i < kScenarios; ++i) {
    auto s = scenarios.Add("scenario-" + std::to_string(i)).ValueOrDie();
    s.Set(meta[i % meta.size()].name, 1.0 + 0.05 * static_cast<double>(i));
    s.Set(meta[(i + 1) % meta.size()].name,
          1.0 - 0.02 * static_cast<double>(i));
  }
  std::vector<ResultDelta> sequential = SequentialDeltas(&session, scenarios);

  std::shared_ptr<const CompiledSession> snapshot =
      session.Snapshot().ValueOrDie();

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIterations = 10;
  std::vector<std::vector<BatchAssignReport>> results(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      // Alternate sweep engines, lane widths, and thread counts across
      // workers so the blocked, sparse, dense, and partitioned paths all
      // run concurrently.
      BatchOptions options;
      options.num_threads = 1 + t % 3;
      options.sweep = t % 3 == 0   ? BatchOptions::Sweep::kBlocked
                      : t % 3 == 1 ? BatchOptions::Sweep::kSparseDelta
                                   : BatchOptions::Sweep::kDenseCopy;
      options.block_lanes = t % 2 == 0 ? 8 : 4;
      options.partition_min_terms = t % 4 == 0 ? 1 : 1024;
      for (std::size_t i = 0; i < kIterations; ++i) {
        results[t].push_back(
            snapshot->AssignBatch(scenarios, options).ValueOrDie());
      }
    });
  }
  for (std::thread& th : pool) th.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), kIterations);
    for (const BatchAssignReport& batch : results[t]) {
      ExpectBitIdentical(sequential, batch);
    }
  }
}

// The tiled scheduler with term splitting active (poly ranges + term slices
// + the post-join fixed-order reduction) must stay data-race-free and
// deterministic when many snapshot users run it concurrently. Run under
// ThreadSanitizer in CI.
TEST(CompiledSessionConcurrencyTest, SplitTiledSchedulerDeterministic) {
  Session session;
  LoadDominantPolySession(&session);
  ScenarioSet scenarios;
  scenarios.Add("boom").ValueOrDie().Set("G", 1.25);
  scenarios.Add("mix").ValueOrDie().Set("G", 0.8).Set("z", 1.5);
  auto snapshot = session.Snapshot().ValueOrDie();

  BatchOptions split;
  split.num_threads = 4;
  split.partition_min_terms = 1;
  split.split_min_terms = 8;
  const BatchAssignReport want =
      snapshot->AssignBatch(scenarios, split).ValueOrDie();

  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kIterations = 8;
  std::vector<std::vector<BatchAssignReport>> results(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      BatchOptions options = split;
      options.sweep = t % 2 == 0 ? BatchOptions::Sweep::kBlocked
                                 : BatchOptions::Sweep::kSparseDelta;
      for (std::size_t i = 0; i < kIterations; ++i) {
        results[t].push_back(
            snapshot->AssignBatch(scenarios, options).ValueOrDie());
      }
    });
  }
  for (std::thread& th : pool) th.join();

  for (const std::vector<BatchAssignReport>& per_thread : results) {
    for (const BatchAssignReport& batch : per_thread) {
      ASSERT_EQ(batch.reports.size(), want.reports.size());
      for (std::size_t i = 0; i < want.reports.size(); ++i) {
        const auto& wr = want.reports[i].delta.rows;
        const auto& gr = batch.reports[i].delta.rows;
        ASSERT_EQ(gr.size(), wr.size());
        for (std::size_t r = 0; r < wr.size(); ++r) {
          EXPECT_EQ(gr[r].full, wr[r].full);
          EXPECT_EQ(gr[r].compressed, wr[r].compressed);
        }
      }
    }
  }
}

// Snapshots share the session's pool instead of copying it, so the one
// mutation the authoring side may perform concurrently — interning new
// names (e.g. the owning Database keeps loading data) — must be safe
// against serving reads. VarPool synchronizes internally; this test is the
// TSan witness for that contract.
TEST(CompiledSessionConcurrencyTest, ServingWhileAuthoringInterns) {
  Session session;
  LoadPaperSession(&session);
  ScenarioSet scenarios;
  scenarios.Add("boom").ValueOrDie().Set("Business", 1.25);
  scenarios.Add("slump").ValueOrDie().Set("Business", 0.8).Set("Special", 0.9);
  std::vector<ResultDelta> sequential = SequentialDeltas(&session, scenarios);
  auto snapshot = session.Snapshot().ValueOrDie();

  constexpr std::size_t kReaders = 4;
  constexpr std::size_t kIterations = 12;
  std::vector<std::vector<BatchAssignReport>> results(kReaders);
  std::vector<std::thread> pool;
  pool.reserve(kReaders + 1);
  for (std::size_t t = 0; t < kReaders; ++t) {
    pool.emplace_back([&, t]() {
      for (std::size_t i = 0; i < kIterations; ++i) {
        results[t].push_back(snapshot->AssignBatch(scenarios).ValueOrDie());
      }
    });
  }
  pool.emplace_back([&]() {
    // The writer grows the shared pool and reads it back while serving is
    // in flight. (Mutating the Session itself stays single-threaded, per
    // its contract — only the pool is shared.)
    for (int i = 0; i < 300; ++i) {
      prov::VarId id =
          session.mutable_pool()->Intern("late_" + std::to_string(i));
      ASSERT_NE(session.pool().Find("Business"), prov::kInvalidVar);
      ASSERT_EQ(session.pool().Name(id), "late_" + std::to_string(i));
    }
  });
  for (std::thread& th : pool) th.join();

  for (const std::vector<BatchAssignReport>& per_thread : results) {
    for (const BatchAssignReport& batch : per_thread) {
      ExpectBitIdentical(sequential, batch);
    }
  }
}

}  // namespace
}  // namespace cobra::core
