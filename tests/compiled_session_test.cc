// Tests for the immutable CompiledSession serving layer: snapshot identity
// with the Session wrappers, sparse-override equivalence against the dense
// copy-based engine (including exponent-expanded factors and variables
// outside the abstraction), intra-program partitioning determinism, and
// lock-free concurrent serving (N threads x M scenarios must reproduce the
// sequential results exactly). The concurrency test is the one the TSan CI
// job runs.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/compiled_session.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/example_db.h"

namespace cobra::core {
namespace {

/// A small session whose compression is forced to merge x and y into one
/// meta-variable G, with z and w left outside the abstraction, and an
/// exponent (x*x*x and z*z) so the sparse path exercises repeated factors.
void LoadExponentSession(Session* session) {
  // Single-tree mode allows at most one tree variable per monomial, so x
  // and y never co-occur; exponents come from x^3/y^3/z^2.
  session
      ->LoadPolynomialsText(
          "P1 = 2 * x^3 + 4 * y^3 + 5 * z^2 + 3 * w\n"
          "P2 = x * z + y * z + x + y\n")
      .CheckOK();
  session->SetTreeText("G\n  x\n  y\n").CheckOK();
  // Full size is 8 monomials; only the cut {G} reaches 5 (x^3 and y^3
  // merge into 6*G^3, x*z and y*z into 2*G*z, x and y into 2*G).
  session->SetBound(5);
  session->Compress().ValueOrDie();
  ASSERT_EQ(session->compressed().TotalMonomials(), 5u);
}

void LoadPaperSession(Session* session) {
  session->LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
  session->SetTreeText(data::kFigure2TreeText).CheckOK();
  // Bound 6 selects the cut {Business, Special, p1, p2}, so those
  // meta-variable names are available to scenarios below.
  session->SetBound(6);
  session->Compress().ValueOrDie();
}

std::vector<ResultDelta> SequentialDeltas(Session* session,
                                          const ScenarioSet& scenarios) {
  std::vector<ResultDelta> deltas;
  for (const Scenario& scenario : scenarios.scenarios()) {
    session->ResetMetaValues().CheckOK();
    for (const Scenario::Delta& delta : scenario.deltas) {
      session->SetMetaValue(delta.var, delta.value).CheckOK();
    }
    deltas.push_back(session->Assign(1).ValueOrDie().delta);
  }
  session->ResetMetaValues().CheckOK();
  return deltas;
}

void ExpectBitIdentical(const std::vector<ResultDelta>& want,
                        const BatchAssignReport& got) {
  ASSERT_EQ(got.reports.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    const auto& wr = want[i].rows;
    const auto& gr = got.reports[i].delta.rows;
    ASSERT_EQ(gr.size(), wr.size()) << "scenario " << i;
    for (std::size_t r = 0; r < wr.size(); ++r) {
      EXPECT_EQ(gr[r].label, wr[r].label);
      // EXPECT_EQ, not NEAR: the serving layer promises bit-identity.
      EXPECT_EQ(gr[r].full, wr[r].full) << "scenario " << i << " row " << r;
      EXPECT_EQ(gr[r].compressed, wr[r].compressed)
          << "scenario " << i << " row " << r;
    }
  }
}

TEST(CompiledSessionTest, SnapshotRequiresCompression) {
  Session session;
  EXPECT_EQ(session.Snapshot().status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(CompiledSessionTest, SnapshotIsCachedAndRefreshedOnMetaChange) {
  Session session;
  LoadPaperSession(&session);
  auto a = session.Snapshot().ValueOrDie();
  auto b = session.Snapshot().ValueOrDie();
  EXPECT_EQ(a.get(), b.get());

  session.SetMetaValue("Business", 1.3).CheckOK();
  auto c = session.Snapshot().ValueOrDie();
  EXPECT_NE(a.get(), c.get());
  prov::VarId business = session.pool().Find("Business");
  ASSERT_NE(business, prov::kInvalidVar);
  EXPECT_DOUBLE_EQ(c->default_meta_valuation().Get(business), 1.3);
  // The earlier snapshot is immutable: its defaults are unchanged.
  EXPECT_NE(a->default_meta_valuation().Get(business), 1.3);
}

TEST(CompiledSessionTest, SnapshotAssignMatchesSessionAssign) {
  Session session;
  LoadPaperSession(&session);
  session.SetMetaValue("Business", 1.15).CheckOK();
  AssignReport want = session.Assign(1).ValueOrDie();

  auto snapshot = session.Snapshot().ValueOrDie();
  AssignReport got = snapshot->Assign(1).ValueOrDie();
  ASSERT_EQ(got.delta.rows.size(), want.delta.rows.size());
  for (std::size_t r = 0; r < want.delta.rows.size(); ++r) {
    EXPECT_EQ(got.delta.rows[r].full, want.delta.rows[r].full);
    EXPECT_EQ(got.delta.rows[r].compressed, want.delta.rows[r].compressed);
  }
  EXPECT_EQ(got.full_size, want.full_size);
  EXPECT_EQ(got.compressed_size, want.compressed_size);
}

TEST(CompiledSessionTest, SnapshotSurvivesSessionMutation) {
  Session session;
  LoadPaperSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  std::size_t old_compressed = snapshot->compressed_size();

  ScenarioSet scenarios;
  scenarios.Add("boom").Set("Business", 1.25);
  BatchAssignReport before = snapshot->AssignBatch(scenarios).ValueOrDie();

  // Recompress the session under a tighter bound: the old snapshot must be
  // unaffected and keep serving the old compression.
  session.SetBound(4);
  session.Compress().ValueOrDie();
  auto fresh = session.Snapshot().ValueOrDie();
  EXPECT_LT(fresh->compressed_size(), old_compressed);

  BatchAssignReport after = snapshot->AssignBatch(scenarios).ValueOrDie();
  EXPECT_EQ(snapshot->compressed_size(), old_compressed);
  ASSERT_EQ(after.reports.size(), before.reports.size());
  for (std::size_t r = 0; r < before.reports[0].delta.rows.size(); ++r) {
    EXPECT_EQ(after.reports[0].delta.rows[r].compressed,
              before.reports[0].delta.rows[r].compressed);
  }
}

TEST(CompiledSessionTest, SparseOverridesMatchSequentialWithExponents) {
  Session session;
  LoadExponentSession(&session);

  ScenarioSet scenarios;
  scenarios.Add("default-noop");                    // empty override list
  scenarios.Add("meta").Set("G", 1.5);              // abstracted group
  scenarios.Add("outside").Set("z", 0.5);           // out-of-abstraction var
  scenarios.Add("outside2").Set("w", 2.5).Set("z", 1.25);
  scenarios.Add("mixed").Set("G", 0.8).Set("z", 3.0).Set("w", 0.1);
  scenarios.Add("leaf-under-meta").Set("x", 9.0);   // no-op: G wins
  scenarios.Add("repeat").Set("G", 2.0).Set("G", 0.25);

  std::vector<ResultDelta> sequential = SequentialDeltas(&session, scenarios);

  auto snapshot = session.Snapshot().ValueOrDie();
  BatchOptions sparse;
  sparse.sweep = BatchOptions::Sweep::kSparseDelta;
  ExpectBitIdentical(sequential,
                     snapshot->AssignBatch(scenarios, sparse).ValueOrDie());

  BatchOptions dense;
  dense.sweep = BatchOptions::Sweep::kDenseCopy;
  ExpectBitIdentical(sequential,
                     snapshot->AssignBatch(scenarios, dense).ValueOrDie());
}

TEST(CompiledSessionTest, PartitionedSweepIsDeterministic) {
  Session session;
  LoadPaperSession(&session);
  const std::vector<MetaVar>& meta = session.meta_vars();
  ASSERT_GE(meta.size(), 2u);
  ScenarioSet scenarios;
  scenarios.Add("boom").Set(meta[0].name, 1.25);
  scenarios.Add("slump").Set(meta[0].name, 0.8).Set(meta[1].name, 0.9);
  std::vector<ResultDelta> sequential = SequentialDeltas(&session, scenarios);

  auto snapshot = session.Snapshot().ValueOrDie();
  for (std::size_t threads : {1u, 3u, 8u, 16u}) {
    BatchOptions options;
    options.num_threads = threads;
    options.partition_min_terms = 1;  // force partitioning, tiny program
    ExpectBitIdentical(
        sequential, snapshot->AssignBatch(scenarios, options).ValueOrDie());
  }
}

TEST(CompiledSessionTest, LeafToMetaIndirectionCoversPool) {
  Session session;
  LoadExponentSession(&session);
  auto snapshot = session.Snapshot().ValueOrDie();
  const std::vector<prov::VarId>& remap = snapshot->leaf_to_meta();
  ASSERT_GE(remap.size(), snapshot->pool().size());
  prov::VarId x = snapshot->pool().Find("x");
  prov::VarId g = snapshot->pool().Find("G");
  prov::VarId z = snapshot->pool().Find("z");
  ASSERT_NE(x, prov::kInvalidVar);
  ASSERT_NE(g, prov::kInvalidVar);
  ASSERT_NE(z, prov::kInvalidVar);
  EXPECT_EQ(remap[x], g);  // abstracted leaf points at its meta-variable
  EXPECT_EQ(remap[z], z);  // off-tree variable maps to itself
}

// The headline guarantee: one snapshot, shared by N threads with zero
// locks, each thread running batches and single assignments concurrently,
// reproduces the sequential Session results bit for bit. Run under
// ThreadSanitizer in CI.
TEST(CompiledSessionConcurrencyTest, ManyThreadsMatchSequential) {
  Session session;
  LoadPaperSession(&session);

  constexpr std::size_t kScenarios = 12;
  ScenarioSet scenarios;
  const std::vector<MetaVar>& meta = session.meta_vars();
  ASSERT_FALSE(meta.empty());
  for (std::size_t i = 0; i < kScenarios; ++i) {
    auto s = scenarios.Add("scenario-" + std::to_string(i));
    s.Set(meta[i % meta.size()].name, 1.0 + 0.05 * static_cast<double>(i));
    s.Set(meta[(i + 1) % meta.size()].name,
          1.0 - 0.02 * static_cast<double>(i));
  }
  std::vector<ResultDelta> sequential = SequentialDeltas(&session, scenarios);

  std::shared_ptr<const CompiledSession> snapshot =
      session.Snapshot().ValueOrDie();

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIterations = 10;
  std::vector<std::vector<BatchAssignReport>> results(kThreads);
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      // Alternate sweep engines and thread counts across workers so the
      // sparse, dense, and partitioned paths all run concurrently.
      BatchOptions options;
      options.num_threads = 1 + t % 3;
      options.sweep = t % 2 == 0 ? BatchOptions::Sweep::kSparseDelta
                                 : BatchOptions::Sweep::kDenseCopy;
      options.partition_min_terms = t % 4 == 0 ? 1 : 1024;
      for (std::size_t i = 0; i < kIterations; ++i) {
        results[t].push_back(
            snapshot->AssignBatch(scenarios, options).ValueOrDie());
      }
    });
  }
  for (std::thread& th : pool) th.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(results[t].size(), kIterations);
    for (const BatchAssignReport& batch : results[t]) {
      ExpectBitIdentical(sequential, batch);
    }
  }
}

}  // namespace
}  // namespace cobra::core
