// Hot-swap coherence test for CobraServer (serve/server.h): many client
// threads hammer AssignBatch over the wire while another thread keeps
// swapping the served session between two versions. Every response must be
// served against exactly ONE coherent version — bit-identical to a direct
// CompiledSession::AssignBatch on that version — and no accepted request
// may fail. Run under TSan in CI (the tsan job) to also prove the swap
// path is race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/compiled_session.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/example_db.h"
#include "prov/valuation.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "util/status.h"

namespace cobra::serve {
namespace {

using core::CompiledSession;
using core::ScenarioSet;
using core::Session;

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

std::shared_ptr<const CompiledSession> ExampleSnapshot(Session* session) {
  session->LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
  session->SetTreeText(data::kFigure2TreeText).CheckOK();
  session->SetBound(6);
  session->Compress().ValueOrDie();
  return session->Snapshot().ValueOrDie();
}

ScenarioSet ExampleScenarios() {
  ScenarioSet scenarios;
  scenarios.Add("baseline");
  scenarios.Add("slump").ValueOrDie().Set("Business", 0.8);
  scenarios.Add("mixed").ValueOrDie().Set("Business", 1.25).Set("Special", 0.9);
  return scenarios;
}

/// The expected (scenario x group) matrices of one version, from a direct
/// in-process AssignBatch — the serving tier's ground truth.
struct Expected {
  std::vector<double> full;
  std::vector<double> compressed;
};

Expected DirectResults(const CompiledSession& session,
                       const ScenarioSet& scenarios) {
  Expected expected;
  core::BatchAssignReport report =
      session.AssignBatch(scenarios).ValueOrDie();
  for (const core::AssignReport& scenario : report.reports) {
    for (const core::ResultDelta::Row& row : scenario.delta.rows) {
      expected.full.push_back(row.full);
      expected.compressed.push_back(row.compressed);
    }
  }
  return expected;
}

TEST(ServeSwapTest, HammeredSwapsServeExactlyOneCoherentVersion) {
  Session session;
  std::shared_ptr<const CompiledSession> version_a =
      ExampleSnapshot(&session);
  // Version B shares A's compiled programs but answers under a different
  // default valuation — cheap to make, and every group value differs, so a
  // torn read (half A, half B) cannot go unnoticed.
  prov::Valuation meta = version_a->default_meta_valuation();
  const std::vector<core::MetaVar>& meta_vars = version_a->meta_vars();
  ASSERT_FALSE(meta_vars.empty());
  for (const core::MetaVar& var : meta_vars) meta.Set(var.var, 1.5);
  std::shared_ptr<const CompiledSession> version_b =
      version_a->WithDefaultMetaValuation(meta);

  const ScenarioSet scenarios = ExampleScenarios();
  const Expected expected_a = DirectResults(*version_a, scenarios);
  const Expected expected_b = DirectResults(*version_b, scenarios);
  // The two versions must actually disagree for the test to mean anything.
  ASSERT_FALSE(SameBits(expected_a.full[0], expected_b.full[0]));

  ServerOptions options;
  options.num_workers = 4;
  options.queue_capacity = 1024;  // hammering must never shed
  CobraServer server(options);
  server.set_log([](const std::string&) {});  // quiet
  ASSERT_TRUE(server.Start().ok());
  server.Swap(version_a, "vA");  // version 1

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 25;
  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::atomic<std::uint64_t> checked{0};

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      util::Result<Client> client =
          Client::Connect("127.0.0.1", server.port(), /*timeout_ms=*/30000);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRequestsPerThread; ++r) {
        WireRequest request;
        request.type = MsgType::kAssignBatch;
        request.request_id =
            static_cast<std::uint64_t>(t) * 1000 + static_cast<std::uint64_t>(r);
        request.deadline_ms = 30000;
        request.scenarios = scenarios;
        util::Result<WireResponse> response = client->Call(request);
        if (!response.ok() || response->code != WireCode::kOk) {
          failures.fetch_add(1);
          continue;
        }
        // Swaps alternate A, B, A, ... starting at version 1 = A. The
        // version the server reports decides which ground truth applies;
        // every cell must match it bit for bit.
        const Expected& expected =
            (response->snapshot_version % 2 == 1) ? expected_a : expected_b;
        if (response->full_values.size() != expected.full.size() ||
            response->compressed_values.size() !=
                expected.compressed.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::size_t i = 0; i < expected.full.size(); ++i) {
          if (!SameBits(response->full_values[i], expected.full[i]) ||
              !SameBits(response->compressed_values[i],
                        expected.compressed[i])) {
            mismatches.fetch_add(1);
            break;
          }
        }
        checked.fetch_add(1);
      }
    });
  }

  // The writer: keep swapping while the clients hammer.
  std::atomic<bool> swapping{true};
  std::thread writer([&] {
    bool serve_b = true;
    while (swapping.load()) {
      server.Swap(serve_b ? version_b : version_a, serve_b ? "vB" : "vA");
      serve_b = !serve_b;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  for (std::thread& client : clients) client.join();
  swapping.store(false);
  writer.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(checked.load(),
            static_cast<std::uint64_t>(kThreads) * kRequestsPerThread);
  // The writer performed many swaps, so the hammering really did cross
  // version boundaries.
  EXPECT_GT(server.stats().swaps, 2u);
}

TEST(ServeSwapTest, RequestsBeforeFirstSwapFailPrecondition) {
  CobraServer server(ServerOptions{});
  server.set_log([](const std::string&) {});
  ASSERT_TRUE(server.Start().ok());
  util::Result<Client> client =
      Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  WireRequest request;
  request.type = MsgType::kAssignBatch;
  request.request_id = 1;
  request.scenarios.Add("s").ValueOrDie().Set("Business", 0.5);
  util::Result<WireResponse> response = client->Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, WireCode::kFailedPrecondition);
  server.Stop();
}

TEST(ServeSwapTest, StopDrainsAcceptedRequests) {
  Session session;
  std::shared_ptr<const CompiledSession> snapshot =
      ExampleSnapshot(&session);
  ServerOptions options;
  options.num_workers = 2;
  CobraServer server(options);
  server.set_log([](const std::string&) {});
  ASSERT_TRUE(server.Start().ok());
  server.Swap(snapshot, "v1");

  // Issue a burst of requests from several threads, then Stop concurrently:
  // every request that got an OK admission must still receive its real
  // response (the server half-closes but finishes the queue).
  constexpr int kThreads = 4;
  std::atomic<int> ok{0};
  std::atomic<int> shed{0};
  std::atomic<int> broken{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      util::Result<Client> client =
          Client::Connect("127.0.0.1", server.port(), 30000);
      if (!client.ok()) return;
      for (int r = 0; r < 10; ++r) {
        WireRequest request;
        request.type = MsgType::kAssignBatch;
        request.request_id = static_cast<std::uint64_t>(r) + 1;
        request.deadline_ms = 30000;
        request.scenarios = ExampleScenarios();
        util::Result<WireResponse> response = client->Call(request);
        if (!response.ok()) {
          // The half-close can race a request the reader never admitted —
          // that is a clean connection error, not a dropped response.
          broken.fetch_add(1);
          return;
        }
        if (response->code == WireCode::kOk) {
          ok.fetch_add(1);
        } else {
          shed.fetch_add(1);  // draining admissions answer kUnavailable
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Stop();
  for (std::thread& client : clients) client.join();
  // Drain accounting: everything the server accepted completed.
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted,
            stats.completed + stats.deadline_exceeded + stats.failed);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(ok.load(), 0);
}

}  // namespace
}  // namespace cobra::serve
