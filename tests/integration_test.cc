// Full-stack integration tests: generator -> instrumentation -> SQL with
// provenance -> compression -> scenario assignment, validated against
// ground truth obtained by modifying the database and re-running the query
// (the end-to-end version of the commutation property, THROUGH the
// compressed provenance).

#include <gtest/gtest.h>

#include <map>

#include "core/session.h"
#include "data/telephony.h"
#include "rel/sql/planner.h"
#include "util/rng.h"

namespace cobra {
namespace {

class FullStackTest : public ::testing::Test {
 protected:
  static data::TelephonyConfig SmallConfig() {
    data::TelephonyConfig config;
    config.num_customers = 400;
    config.num_zips = 10;
    config.num_months = 12;
    config.seed = 7;
    return config;
  }

  /// Ground truth: scale the Plans prices by the per-plan/per-month
  /// factors, re-run the query, return zip -> revenue.
  static std::map<std::int64_t, double> RerunWithScaledPrices(
      const std::map<std::string, double>& plan_factor, double m3_factor) {
    rel::Database db = data::GenerateTelephony(SmallConfig());
    rel::AnnotatedTable* plans = db.GetMutableTable("Plans").ValueOrDie();
    auto* prices = plans->table.mutable_column(2)->MutableDoubles();
    for (std::size_t r = 0; r < plans->NumRows(); ++r) {
      std::string plan = plans->table.Get(r, 0).AsString();
      std::int64_t month = plans->table.Get(r, 1).AsInt64();
      auto it = plan_factor.find(plan);
      if (it != plan_factor.end()) (*prices)[r] *= it->second;
      if (month == 3) (*prices)[r] *= m3_factor;
    }
    prov::Valuation neutral(*db.var_pool());
    rel::Table answer = rel::sql::RunSql(db, data::TelephonyRevenueQuery())
                            .ValueOrDie()
                            .Evaluate(neutral);
    std::map<std::int64_t, double> out;
    for (std::size_t r = 0; r < answer.NumRows(); ++r) {
      out[answer.Get(r, 0).AsInt64()] = answer.Get(r, 1).AsDouble();
    }
    return out;
  }
};

TEST_F(FullStackTest, CompressedScenarioEqualsDatabaseModification) {
  // Provenance side, compressed to the Business/Special/Standard level.
  rel::Database db = data::GenerateTelephony(SmallConfig());
  data::InstrumentTelephony(&db).CheckOK();
  rel::sql::QueryResult result =
      rel::sql::RunSql(db, data::TelephonyRevenueQuery()).ValueOrDie();

  core::Session session(db.var_pool());
  session.LoadPolynomials(result.Provenance());
  session.SetTreeText(data::TelephonyPlanTreeText()).CheckOK();
  session.SetBound(10 * 12 * 3);  // zips * months * 3 groups
  core::CompressionReport report = session.Compress().ValueOrDie();
  ASSERT_TRUE(report.feasible);
  ASSERT_EQ(report.cut_description, "{Business, Special, Standard}");

  // Scenario: business plans +10%, March -20% — group-uniform, so the
  // compressed result must be *exact* against full re-execution.
  session.SetMetaValue("Business", 1.1).CheckOK();
  session.SetMetaValue("m3", 0.8).CheckOK();
  core::AssignReport assign = session.Assign().ValueOrDie();

  std::map<std::string, double> plan_factor;
  for (const data::PlanInfo& plan : data::DefaultPlans()) {
    bool business = plan.plan == "SB1" || plan.plan == "SB2" ||
                    plan.plan == "E";
    plan_factor[plan.plan] = business ? 1.1 : 1.0;
  }
  std::map<std::int64_t, double> truth =
      RerunWithScaledPrices(plan_factor, 0.8);

  ASSERT_EQ(assign.delta.rows.size(), truth.size());
  for (const core::ResultDelta::Row& row : assign.delta.rows) {
    std::int64_t zip = std::stoll(row.label);
    ASSERT_TRUE(truth.count(zip) > 0) << zip;
    double expected = truth[zip];
    EXPECT_NEAR(row.compressed, expected, 1e-6 * (1.0 + std::abs(expected)))
        << "zip " << zip;
    EXPECT_NEAR(row.full, expected, 1e-6 * (1.0 + std::abs(expected)))
        << "zip " << zip;
  }
}

TEST_F(FullStackTest, NonUniformScenarioWithinGroupNeedsFinerCut) {
  // If the analyst needs SB1 and SB2 to move differently, the Business-level
  // abstraction cannot express it — but a finer (leaf-keeping) cut can.
  rel::Database db = data::GenerateTelephony(SmallConfig());
  data::InstrumentTelephony(&db).CheckOK();
  rel::sql::QueryResult result =
      rel::sql::RunSql(db, data::TelephonyRevenueQuery()).ValueOrDie();

  core::Session session(db.var_pool());
  session.LoadPolynomials(result.Provenance());
  session.SetTreeText(data::TelephonyPlanTreeText()).CheckOK();
  session.SetBound(10 * 12 * 11);  // full size: leaf cut
  session.Compress().ValueOrDie();
  session.SetMetaValue("b1", 1.3).CheckOK();
  session.SetMetaValue("b2", 0.7).CheckOK();
  core::AssignReport assign = session.Assign().ValueOrDie();

  std::map<std::string, double> plan_factor{{"SB1", 1.3}, {"SB2", 0.7}};
  std::map<std::int64_t, double> truth =
      RerunWithScaledPrices(plan_factor, 1.0);
  for (const core::ResultDelta::Row& row : assign.delta.rows) {
    std::int64_t zip = std::stoll(row.label);
    double expected = truth[zip];
    EXPECT_NEAR(row.compressed, expected, 1e-6 * (1.0 + std::abs(expected)));
  }
}

TEST_F(FullStackTest, SpeedupGrowsAsBoundShrinks) {
  data::TelephonyConfig config = SmallConfig();
  config.num_customers = 5000;
  config.num_zips = 50;
  rel::Database db = data::GenerateTelephony(config);
  data::InstrumentTelephony(&db).CheckOK();
  rel::sql::QueryResult result =
      rel::sql::RunSql(db, data::TelephonyRevenueQuery()).ValueOrDie();

  core::Session session(db.var_pool());
  session.LoadPolynomials(result.Provenance());
  session.SetTreeText(data::TelephonyPlanTreeText()).CheckOK();
  std::size_t full = session.full().TotalMonomials();

  session.SetBound(full * 7 / 11);
  session.Compress().ValueOrDie();
  double mild = session.Assign(20).ValueOrDie().timing.compressed_seconds;

  session.SetBound(full * 1 / 11);
  session.Compress().ValueOrDie();
  double aggressive =
      session.Assign(20).ValueOrDie().timing.compressed_seconds;

  // 1/11 of the monomials should evaluate measurably faster than 7/11.
  EXPECT_LT(aggressive, mild);
}

TEST_F(FullStackTest, MultiplePolySetsThroughOneSessionPool) {
  // Two different queries over the same database share the variable pool;
  // compressing one must not corrupt the other's variables.
  rel::Database db = data::GenerateTelephony(SmallConfig());
  data::InstrumentTelephony(&db).CheckOK();
  rel::sql::QueryResult by_zip =
      rel::sql::RunSql(db, data::TelephonyRevenueQuery()).ValueOrDie();
  rel::sql::QueryResult by_month =
      rel::sql::RunSql(db,
                       "SELECT Calls.Mo, SUM(Calls.Dur * Plans.Price) AS r "
                       "FROM Calls, Cust, Plans "
                       "WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID "
                       "AND Calls.Mo = Plans.Mo GROUP BY Calls.Mo")
          .ValueOrDie();

  core::Session session(db.var_pool());
  session.LoadPolynomials(by_zip.Provenance());
  session.SetTreeText(data::TelephonyPlanTreeText()).CheckOK();
  session.SetBound(1);
  session.Compress(core::Algorithm::kGreedy).ValueOrDie();

  // The second result still evaluates correctly under the shared pool.
  prov::Valuation neutral(*db.var_pool());
  rel::Table months = by_month.Evaluate(neutral);
  EXPECT_EQ(months.NumRows(), 12u);
  double total = 0;
  for (std::size_t r = 0; r < months.NumRows(); ++r) {
    total += months.Get(r, 1).AsDouble();
  }
  rel::Table zips = by_zip.Evaluate(neutral);
  double total_by_zip = 0;
  for (std::size_t r = 0; r < zips.NumRows(); ++r) {
    total_by_zip += zips.Get(r, 1).AsDouble();
  }
  EXPECT_NEAR(total, total_by_zip, 1e-6 * (1.0 + total));
}

}  // namespace
}  // namespace cobra
