// Tests for the calibrated telephony generator (experiment E3 at reduced
// scale): determinism, coverage, and the paper's size identities
// size = zips * months * plan-groups.

#include "data/telephony.h"

#include <gtest/gtest.h>

#include "core/compressor.h"
#include "core/profile.h"
#include "core/tree.h"
#include "rel/sql/planner.h"

namespace cobra::data {
namespace {

TelephonyConfig SmallConfig() {
  TelephonyConfig config;
  config.num_customers = 600;  // >= 11 plans per zip guaranteed via RR
  config.num_zips = 20;
  config.num_months = 12;
  config.seed = 42;
  return config;
}

TEST(TelephonyGenerator, RowCountsMatchConfig) {
  TelephonyConfig config = SmallConfig();
  rel::Database db = GenerateTelephony(config);
  EXPECT_EQ(db.GetTable("Cust").ValueOrDie()->NumRows(), 600u);
  EXPECT_EQ(db.GetTable("Calls").ValueOrDie()->NumRows(), 600u * 12u);
  EXPECT_EQ(db.GetTable("Plans").ValueOrDie()->NumRows(),
            DefaultPlans().size() * 12u);
}

TEST(TelephonyGenerator, DeterministicForSameSeed) {
  rel::Database a = GenerateTelephony(SmallConfig());
  rel::Database b = GenerateTelephony(SmallConfig());
  const rel::AnnotatedTable& calls_a = *a.GetTable("Calls").ValueOrDie();
  const rel::AnnotatedTable& calls_b = *b.GetTable("Calls").ValueOrDie();
  ASSERT_EQ(calls_a.NumRows(), calls_b.NumRows());
  for (std::size_t r = 0; r < calls_a.NumRows(); r += 997) {
    EXPECT_EQ(calls_a.table.Get(r, 2).AsInt64(),
              calls_b.table.Get(r, 2).AsInt64());
  }
}

TEST(TelephonyGenerator, RoundRobinGuaranteesPlanCoveragePerZip) {
  rel::Database db = GenerateTelephony(SmallConfig());
  const rel::AnnotatedTable& cust = *db.GetTable("Cust").ValueOrDie();
  // zip -> set of plans
  std::map<std::int64_t, std::set<std::string>> coverage;
  for (std::size_t r = 0; r < cust.NumRows(); ++r) {
    coverage[cust.table.Get(r, 2).AsInt64()].insert(
        cust.table.Get(r, 1).AsString());
  }
  EXPECT_EQ(coverage.size(), 20u);
  for (const auto& [zip, plans] : coverage) {
    EXPECT_EQ(plans.size(), DefaultPlans().size()) << "zip " << zip;
  }
}

TEST(TelephonyGenerator, PricesPositiveAndDriftBounded) {
  rel::Database db = GenerateTelephony(SmallConfig());
  const rel::AnnotatedTable& plans = *db.GetTable("Plans").ValueOrDie();
  for (std::size_t r = 0; r < plans.NumRows(); ++r) {
    double price = plans.table.Get(r, 2).AsDouble();
    EXPECT_GT(price, 0.0);
    EXPECT_LT(price, 1.0);
  }
}

/// E3 identity at test scale: full provenance size = zips * months * plans,
/// and the paper's two bounds scale to cuts S2 (7 groups) and S1 (3 groups).
TEST(TelephonyE3, SizeIdentityAndPaperCutsAtReducedScale) {
  TelephonyConfig config = SmallConfig();
  rel::Database db = GenerateTelephony(config);
  InstrumentTelephony(&db).CheckOK();
  rel::sql::QueryResult result =
      rel::sql::RunSql(db, TelephonyRevenueQuery()).ValueOrDie();
  prov::PolySet provenance = result.Provenance();

  const std::size_t zips = config.num_zips, months = config.num_months;
  const std::size_t plans = DefaultPlans().size();  // 11
  EXPECT_EQ(provenance.TotalMonomials(), zips * months * plans);
  EXPECT_EQ(provenance.size(), zips);
  EXPECT_EQ(provenance.NumDistinctVariables(), plans + months);

  core::AbstractionTree tree =
      core::ParseTree(TelephonyPlanTreeText(), db.mutable_var_pool())
          .ValueOrDie();
  core::TreeProfile profile =
      core::AnalyzeSingleTree(provenance, tree, *db.var_pool()).ValueOrDie();

  // The paper's bound/size pairs scale as groups*zips*months:
  // 11 groups = full, 7 groups (S2), 3 groups (S1), 1 group (S5).
  auto scaled = [&](std::size_t groups) { return zips * months * groups; };
  // Bound between 7 and 8 groups -> optimal keeps exactly 7 cut nodes.
  core::CutSolution s7 =
      core::OptimalSingleTreeCut(tree, profile, scaled(8) - 1).ValueOrDie();
  EXPECT_TRUE(s7.feasible);
  EXPECT_EQ(s7.num_cut_nodes, 7u);
  EXPECT_EQ(s7.compressed_size, scaled(7));
  // Bound between 3 and 4 groups -> exactly 3 cut nodes (cut S1).
  core::CutSolution s3 =
      core::OptimalSingleTreeCut(tree, profile, scaled(4) - 1).ValueOrDie();
  EXPECT_TRUE(s3.feasible);
  EXPECT_EQ(s3.num_cut_nodes, 3u);
  EXPECT_EQ(s3.compressed_size, scaled(3));
  EXPECT_EQ(s3.cut.ToString(tree), "{Business, Special, Standard}");
}

/// The exact paper numbers divided by the zip ratio: with 1055 zips the
/// sizes are 139,260 / 88,620 / 37,980; the identity is linear in zips.
TEST(TelephonyE3, PaperNumbersAreLinearInZips) {
  constexpr std::size_t kPaperZips = 1055, kMonths = 12, kPlans = 11;
  EXPECT_EQ(kPaperZips * kMonths * kPlans, 139260u);
  EXPECT_EQ(kPaperZips * kMonths * 7u, 88620u);
  EXPECT_EQ(kPaperZips * kMonths * 3u, 37980u);
}

TEST(TelephonyTrees, QuarterTreeShape) {
  prov::VarPool pool;
  core::AbstractionTree tree =
      core::ParseTree(MonthQuarterTreeText(12), &pool).ValueOrDie();
  EXPECT_EQ(tree.Leaves().size(), 12u);
  EXPECT_EQ(tree.size(), 1u + 4u + 12u);
  EXPECT_EQ(tree.node(tree.root()).name, "Months");
  EXPECT_NE(tree.FindByName("q4"), core::kNoNode);
}

TEST(TelephonyTrees, PlanTreeMatchesFigure2) {
  prov::VarPool pool;
  core::AbstractionTree tree =
      core::ParseTree(TelephonyPlanTreeText(), &pool).ValueOrDie();
  EXPECT_EQ(tree.Leaves().size(), 11u);
  EXPECT_EQ(tree.CountCuts(), 31u);
}

TEST(TelephonyGenerator, RandomPlanModeStillRuns) {
  TelephonyConfig config = SmallConfig();
  config.round_robin_plans = false;
  rel::Database db = GenerateTelephony(config);
  EXPECT_EQ(db.GetTable("Cust").ValueOrDie()->NumRows(), 600u);
}

}  // namespace
}  // namespace cobra::data
