// Tests for the CSV table loader: type inference, round trips, error
// handling, and end-to-end SQL over loaded data.

#include "rel/csv_loader.h"

#include <gtest/gtest.h>

#include "rel/sql/planner.h"
#include "util/csv.h"

namespace cobra::rel {
namespace {

TEST(CsvLoaderTest, InfersIntDoubleString) {
  Table t = TableFromCsv("a,b,c\n1,1.5,x\n2,2,y\n", "T").ValueOrDie();
  EXPECT_EQ(t.schema().column(0).type, Type::kInt64);
  EXPECT_EQ(t.schema().column(1).type, Type::kDouble);
  EXPECT_EQ(t.schema().column(2).type, Type::kString);
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.Get(1, 0).AsInt64(), 2);
  EXPECT_DOUBLE_EQ(t.Get(0, 1).AsDouble(), 1.5);
  EXPECT_EQ(t.Get(1, 2).AsString(), "y");
}

TEST(CsvLoaderTest, IntColumnDemotesToDoubleThenString) {
  Table t = TableFromCsv("a\n1\n2.5\n", "T").ValueOrDie();
  EXPECT_EQ(t.schema().column(0).type, Type::kDouble);
  Table s = TableFromCsv("a\n1\n2.5\nhello\n", "T").ValueOrDie();
  EXPECT_EQ(s.schema().column(0).type, Type::kString);
  EXPECT_EQ(s.Get(0, 0).AsString(), "1");
}

TEST(CsvLoaderTest, HeaderOnlyGivesEmptyStringTable) {
  Table t = TableFromCsv("a,b\n", "T").ValueOrDie();
  EXPECT_EQ(t.NumRows(), 0u);
  EXPECT_EQ(t.schema().column(0).type, Type::kString);
}

TEST(CsvLoaderTest, QualifierAppliesToAllColumns) {
  Table t = TableFromCsv("a,b\n1,2\n", "Orders").ValueOrDie();
  EXPECT_EQ(t.schema().QualifiedName(0), "Orders.a");
  EXPECT_TRUE(t.schema().Resolve("Orders.b").ok());
}

TEST(CsvLoaderTest, RejectsMalformedCsv) {
  EXPECT_FALSE(TableFromCsv("a,b\n1\n", "T").ok());
  EXPECT_FALSE(TableFromCsv("", "T").ok());
}

TEST(CsvLoaderTest, RoundTripThroughTableToCsv) {
  Table t = TableFromCsv("name,score\nalice,3\nbob,4\n", "T").ValueOrDie();
  std::string csv = TableToCsv(t);
  Table again = TableFromCsv(csv, "T").ValueOrDie();
  EXPECT_EQ(again.NumRows(), 2u);
  EXPECT_EQ(again.Get(0, 0).AsString(), "alice");
  EXPECT_EQ(again.Get(1, 1).AsInt64(), 4);
}

TEST(CsvLoaderTest, LoadCsvTableIntoDatabaseAndQuery) {
  std::string path = ::testing::TempDir() + "/cobra_loader_test.csv";
  util::WriteFile(path, "k,v\n1,10\n2,20\n1,30\n").CheckOK();
  Database db;
  ASSERT_TRUE(LoadCsvTable(&db, "T", path).ok());
  auto result =
      sql::RunSql(db, "SELECT k, SUM(v) AS total FROM T GROUP BY k")
          .ValueOrDie();
  prov::Valuation neutral(*db.var_pool());
  Table answer = result.Evaluate(neutral);
  ASSERT_EQ(answer.NumRows(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    if (answer.Get(r, 0).AsInt64() == 1) {
      EXPECT_DOUBLE_EQ(answer.Get(r, 1).AsDouble(), 40.0);
    } else {
      EXPECT_DOUBLE_EQ(answer.Get(r, 1).AsDouble(), 20.0);
    }
  }
}

TEST(CsvLoaderTest, MissingFileFails) {
  Database db;
  EXPECT_FALSE(LoadCsvTable(&db, "T", "/no/such/file.csv").ok());
}

TEST(CsvLoaderTest, QuotedFieldsSurvive) {
  Table t = TableFromCsv("a\n\"x, y\"\n", "T").ValueOrDie();
  EXPECT_EQ(t.Get(0, 0).AsString(), "x, y");
}

TEST(CsvLoaderTest, NegativeAndScientificNumbers) {
  Table t = TableFromCsv("a,b\n-5,1e3\n7,-2.5e-2\n", "T").ValueOrDie();
  EXPECT_EQ(t.schema().column(0).type, Type::kInt64);
  EXPECT_EQ(t.schema().column(1).type, Type::kDouble);
  EXPECT_EQ(t.Get(0, 0).AsInt64(), -5);
  EXPECT_DOUBLE_EQ(t.Get(0, 1).AsDouble(), 1000.0);
  EXPECT_DOUBLE_EQ(t.Get(1, 1).AsDouble(), -0.025);
}

}  // namespace
}  // namespace cobra::rel
