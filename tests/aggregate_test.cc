// Tests for GroupByAggregate: symbolic SUM/COUNT via the aggregate
// semimodule, numeric AVG/MIN/MAX, grouping, labels, evaluation.

#include "rel/aggregate.h"

#include <gtest/gtest.h>

#include "prov/parser.h"
#include "rel/database.h"
#include "rel/instrument.h"

namespace cobra::rel {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  AggregateTest() {
    Table t(Schema("T", {{"G", Type::kString},
                         {"X", Type::kInt64},
                         {"Y", Type::kDouble}}));
    t.AppendRow({Value("a"), Value(std::int64_t{1}), Value(10.0)});
    t.AppendRow({Value("a"), Value(std::int64_t{2}), Value(20.0)});
    t.AppendRow({Value("b"), Value(std::int64_t{3}), Value(30.0)});
    db_.AddTable("T", std::move(t)).CheckOK();
  }

  prov::Polynomial Parse(const char* text) {
    return prov::ParsePolynomial(text, db_.mutable_var_pool()).ValueOrDie();
  }

  const AnnotatedTable& T() { return *db_.GetTable("T").ValueOrDie(); }

  Database db_;
};

TEST_F(AggregateTest, PlainSumAndCountWithoutProvenance) {
  GroupedResult r = GroupByAggregate(
                        T(), {"G"},
                        {{AggFunc::kSum, Expr::Column("X"), "sx"},
                         {AggFunc::kCount, nullptr, "n"}})
                        .ValueOrDie();
  ASSERT_EQ(r.NumGroups(), 2u);
  EXPECT_EQ(r.GroupLabel(0), "a");
  EXPECT_EQ(r.PolyAt(0, 0), Parse("3"));
  EXPECT_EQ(r.PolyAt(0, 1), Parse("2"));
  EXPECT_EQ(r.PolyAt(1, 0), Parse("3"));
  EXPECT_EQ(r.PolyAt(1, 1), Parse("1"));
}

TEST_F(AggregateTest, SymbolicSumBuildsPolynomials) {
  InstrumentTuples(&db_, "T", "t").CheckOK();
  GroupedResult r =
      GroupByAggregate(T(), {"G"},
                       {{AggFunc::kSum, Expr::Column("Y"), "sy"}})
          .ValueOrDie();
  EXPECT_EQ(r.PolyAt(0, 0), Parse("10 * t0 + 20 * t1"));
  EXPECT_EQ(r.PolyAt(1, 0), Parse("30 * t2"));
}

TEST_F(AggregateTest, SymbolicSumMergesEqualAnnotations) {
  // Tag both 'a' rows with the same variable: coefficients add.
  InstrumentTable(&db_, "T", [](const Table& t, std::size_t row) {
    return std::vector<std::string>{
        t.Get(row, 0).AsString() == "a" ? "u" : "w"};
  }).CheckOK();
  GroupedResult r =
      GroupByAggregate(T(), {"G"},
                       {{AggFunc::kSum, Expr::Column("Y"), "sy"}})
          .ValueOrDie();
  EXPECT_EQ(r.PolyAt(0, 0), Parse("30 * u"));
  EXPECT_EQ(r.PolyAt(0, 0).NumMonomials(), 1u);
}

TEST_F(AggregateTest, SumOfExpression) {
  GroupedResult r =
      GroupByAggregate(
          T(), {"G"},
          {{AggFunc::kSum, Expr::Mul(Expr::Column("X"), Expr::Column("Y")),
            "sxy"}})
          .ValueOrDie();
  EXPECT_EQ(r.PolyAt(0, 0), Parse("50"));   // 1*10 + 2*20
  EXPECT_EQ(r.PolyAt(1, 0), Parse("90"));   // 3*30
}

TEST_F(AggregateTest, GlobalGroupWhenNoKeys) {
  GroupedResult r =
      GroupByAggregate(T(), {}, {{AggFunc::kSum, Expr::Column("X"), "sx"}})
          .ValueOrDie();
  ASSERT_EQ(r.NumGroups(), 1u);
  EXPECT_EQ(r.GroupLabel(0), "<all>");
  EXPECT_EQ(r.PolyAt(0, 0), Parse("6"));
}

TEST_F(AggregateTest, MinMaxAvgNumeric) {
  GroupedResult r = GroupByAggregate(
                        T(), {"G"},
                        {{AggFunc::kMin, Expr::Column("Y"), "mn"},
                         {AggFunc::kMax, Expr::Column("Y"), "mx"},
                         {AggFunc::kAvg, Expr::Column("Y"), "av"}})
                        .ValueOrDie();
  EXPECT_EQ(r.PolyAt(0, 0), Parse("10"));
  EXPECT_EQ(r.PolyAt(0, 1), Parse("20"));
  EXPECT_EQ(r.PolyAt(0, 2), Parse("15"));
  EXPECT_EQ(r.PolyAt(1, 2), Parse("30"));
}

TEST_F(AggregateTest, MinRejectsSymbolicAnnotations) {
  InstrumentTuples(&db_, "T", "t").CheckOK();
  auto result = GroupByAggregate(T(), {"G"},
                                 {{AggFunc::kMin, Expr::Column("Y"), "mn"}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(AggregateTest, RejectsStringAggregation) {
  EXPECT_FALSE(
      GroupByAggregate(T(), {"G"}, {{AggFunc::kSum, Expr::Column("G"), "s"}})
          .ok());
}

TEST_F(AggregateTest, RejectsMissingInputForSum) {
  EXPECT_FALSE(GroupByAggregate(T(), {"G"}, {{AggFunc::kSum, nullptr, "s"}})
                   .ok());
}

TEST_F(AggregateTest, RejectsEmptyAggList) {
  EXPECT_FALSE(GroupByAggregate(T(), {"G"}, {}).ok());
}

TEST_F(AggregateTest, ToPolySetCarriesLabels) {
  InstrumentTuples(&db_, "T", "t").CheckOK();
  GroupedResult r =
      GroupByAggregate(T(), {"G"},
                       {{AggFunc::kSum, Expr::Column("Y"), "sy"}})
          .ValueOrDie();
  prov::PolySet set = r.ToPolySet(0);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.label(0), "a");
  EXPECT_EQ(set.label(1), "b");
  EXPECT_EQ(set.poly(0), Parse("10 * t0 + 20 * t1"));
}

TEST_F(AggregateTest, EvaluateUnderValuation) {
  InstrumentTuples(&db_, "T", "t").CheckOK();
  GroupedResult r =
      GroupByAggregate(T(), {"G"},
                       {{AggFunc::kSum, Expr::Column("Y"), "sy"}})
          .ValueOrDie();
  prov::Valuation v(*db_.var_pool());
  v.SetByName(*db_.var_pool(), "t0", 0.5).CheckOK();
  Table numeric = r.Evaluate(v);
  ASSERT_EQ(numeric.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(numeric.Get(0, 1).AsDouble(), 5.0 + 20.0);
  EXPECT_DOUBLE_EQ(numeric.Get(1, 1).AsDouble(), 30.0);
  EXPECT_EQ(numeric.schema().QualifiedName(1), "sy");
}

TEST_F(AggregateTest, MultiColumnGroupLabels) {
  GroupedResult r =
      GroupByAggregate(T(), {"G", "X"},
                       {{AggFunc::kCount, nullptr, "n"}})
          .ValueOrDie();
  EXPECT_EQ(r.NumGroups(), 3u);
  EXPECT_EQ(r.GroupLabel(0), "a,1");
}

}  // namespace
}  // namespace cobra::rel
