// Tests for the SQL front end: lexer, parser and the planner/executor.

#include <gtest/gtest.h>

#include "data/example_db.h"
#include "rel/sql/lexer.h"
#include "rel/sql/parser.h"
#include "rel/sql/planner.h"

namespace cobra::rel::sql {
namespace {

// ---------- Lexer ----------

TEST(LexerTest, TokenizesBasicQuery) {
  auto tokens = Lex("SELECT a FROM t WHERE a = 1").ValueOrDie();
  ASSERT_EQ(tokens.size(), 9u);  // 8 tokens + end
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_TRUE(tokens[1].Is(TokenKind::kIdent));
  EXPECT_TRUE(tokens[6].IsSymbol("="));
  EXPECT_TRUE(tokens[7].Is(TokenKind::kNumber));
  EXPECT_TRUE(tokens[8].Is(TokenKind::kEnd));
}

TEST(LexerTest, QualifiedNamesAreOneToken) {
  auto tokens = Lex("Calls.Dur").ValueOrDie();
  EXPECT_EQ(tokens[0].text, "Calls.Dur");
  EXPECT_EQ(tokens.size(), 2u);
}

TEST(LexerTest, StringsAndEscapes) {
  auto tokens = Lex("'it''s'").ValueOrDie();
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "it's");
  EXPECT_FALSE(Lex("'unterminated").ok());
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Lex("a <= b <> c >= d != e").ValueOrDie();
  EXPECT_TRUE(tokens[1].IsSymbol("<="));
  EXPECT_TRUE(tokens[3].IsSymbol("<>"));
  EXPECT_TRUE(tokens[5].IsSymbol(">="));
  EXPECT_TRUE(tokens[7].IsSymbol("<>"));  // != normalizes to <>
}

TEST(LexerTest, CommentsAndNumbers) {
  auto tokens = Lex("1.5 -- trailing comment\n2").ValueOrDie();
  EXPECT_EQ(tokens[0].text, "1.5");
  EXPECT_EQ(tokens[1].text, "2");
  EXPECT_EQ(tokens.size(), 3u);
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Lex("a @ b").ok());
}

// ---------- Parser ----------

TEST(ParserTest, ParsesTheRunningExampleQuery) {
  SelectStmt stmt = ParseSelect(cobra::data::kExampleRevenueQuery).ValueOrDie();
  ASSERT_EQ(stmt.items.size(), 2u);
  EXPECT_FALSE(stmt.items[0].agg.has_value());
  ASSERT_TRUE(stmt.items[1].agg.has_value());
  EXPECT_EQ(*stmt.items[1].agg, AggFunc::kSum);
  ASSERT_EQ(stmt.from.size(), 3u);
  EXPECT_EQ(stmt.from[0].table, "Calls");
  ASSERT_NE(stmt.where, nullptr);
  ASSERT_EQ(stmt.group_by.size(), 1u);
  EXPECT_EQ(stmt.group_by[0], "Cust.Zip");
}

TEST(ParserTest, ParsesAliasesAndLimit) {
  SelectStmt stmt =
      ParseSelect("SELECT SUM(x) AS total, y cnt FROM t a, u "
                  "WHERE a.k = u.k GROUP BY y ORDER BY total DESC LIMIT 5")
          .ValueOrDie();
  EXPECT_EQ(stmt.items[0].alias, "total");
  EXPECT_EQ(stmt.items[1].alias, "cnt");
  EXPECT_EQ(stmt.from[0].alias, "a");
  EXPECT_EQ(stmt.from[0].EffectiveName(), "a");
  EXPECT_EQ(stmt.from[1].EffectiveName(), "u");
  ASSERT_EQ(stmt.order_by.size(), 1u);
  EXPECT_TRUE(stmt.order_by[0].descending);
  EXPECT_EQ(stmt.limit, 5u);
}

TEST(ParserTest, CountStar) {
  SelectStmt stmt = ParseSelect("SELECT COUNT(*) FROM t").ValueOrDie();
  ASSERT_TRUE(stmt.items[0].agg.has_value());
  EXPECT_TRUE(stmt.items[0].count_star);
  EXPECT_EQ(stmt.items[0].expr, nullptr);
}

TEST(ParserTest, OperatorPrecedence) {
  SelectStmt stmt =
      ParseSelect("SELECT a + b * c FROM t WHERE x = 1 OR y = 2 AND z = 3")
          .ValueOrDie();
  // a + (b*c)
  EXPECT_EQ(stmt.items[0].expr->ToString(), "(a + (b * c))");
  // x=1 OR (y=2 AND z=3)
  EXPECT_EQ(stmt.where->op(), ExprOp::kOr);
}

TEST(ParserTest, ParenthesesAndNegation) {
  SelectStmt stmt =
      ParseSelect("SELECT (a + b) * -c FROM t WHERE NOT a > 1").ValueOrDie();
  EXPECT_EQ(stmt.items[0].expr->ToString(), "((a + b) * (-c))");
  EXPECT_EQ(stmt.where->op(), ExprOp::kNot);
}

TEST(ParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseSelect("FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP y").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage ;;").ok());
  EXPECT_FALSE(ParseSelect("SELECT SUM(x FROM t").ok());
}

TEST(ParserTest, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseSelect("SELECT a FROM t;").ok());
}

// ---------- Planner / end-to-end ----------

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : db_(cobra::data::BuildExampleDatabase()) {
    cobra::data::InstrumentExampleDb(&db_).CheckOK();
  }

  Table Run(const std::string& sql) {
    QueryResult result = RunSql(db_, sql).ValueOrDie();
    prov::Valuation neutral(*db_.var_pool());
    return result.Evaluate(neutral);
  }

  Database db_;
};

TEST_F(PlannerTest, SimpleSelectionProjection) {
  Table t = Run("SELECT ID, Zip FROM Cust WHERE Plan = 'A'");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.Get(0, 0).AsInt64(), 1);
  EXPECT_EQ(t.Get(0, 1).AsInt64(), 10001);
}

TEST_F(PlannerTest, ArithmeticInSelectList) {
  Table t = Run("SELECT Dur * 2 AS d2 FROM Calls WHERE CID = 1 AND Mo = 1");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.Get(0, 0).AsInt64(), 1044);
  EXPECT_EQ(t.schema().QualifiedName(0), "d2");
}

TEST_F(PlannerTest, TwoWayJoin) {
  Table t = Run(
      "SELECT Cust.ID, Calls.Dur FROM Cust, Calls "
      "WHERE Cust.ID = Calls.CID AND Calls.Mo = 1 AND Cust.Zip = 10002");
  EXPECT_EQ(t.NumRows(), 3u);  // customers 3, 6, 7
}

TEST_F(PlannerTest, ThreeWayJoinGroupByMatchesPaperTotals) {
  Table t = Run(cobra::data::kExampleRevenueQuery);
  ASSERT_EQ(t.NumRows(), 2u);
  // Neutral valuation reproduces the plain query answer:
  // zip 10001: 208.8+240+127.4+114.45+75.9+72.5+42+24.2 = 905.25
  // zip 10002: 77.9+80.5+52.2+56.5+69.7+100.65 = 437.45
  for (std::size_t i = 0; i < 2; ++i) {
    std::int64_t zip = t.Get(i, 0).AsInt64();
    double revenue = t.Get(i, 1).AsDouble();
    if (zip == 10001) {
      EXPECT_NEAR(revenue, 905.25, 1e-9);
    }
    if (zip == 10002) {
      EXPECT_NEAR(revenue, 437.45, 1e-9);
    }
  }
}

TEST_F(PlannerTest, ProvenancePolynomialsExposed) {
  QueryResult result =
      RunSql(db_, cobra::data::kExampleRevenueQuery).ValueOrDie();
  ASSERT_TRUE(result.IsGrouped());
  prov::PolySet set = result.Provenance();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.TotalMonomials(), 14u);
  EXPECT_EQ(set.NumDistinctVariables(), 9u);  // 7 plan vars + m1 + m3
}

TEST_F(PlannerTest, GlobalAggregateWithoutGroupBy) {
  Table t = Run("SELECT SUM(Dur) AS total FROM Calls");
  ASSERT_EQ(t.NumRows(), 1u);
  // Month 1 durations sum to 3827, month 3 to 3824 (Figure 1).
  EXPECT_DOUBLE_EQ(t.Get(0, 0).AsDouble(), 7651.0);
}

TEST_F(PlannerTest, CountStarPerGroup) {
  Table t = Run("SELECT Zip, COUNT(*) AS n FROM Cust GROUP BY Zip");
  ASSERT_EQ(t.NumRows(), 2u);
  double total = t.Get(0, 1).AsDouble() + t.Get(1, 1).AsDouble();
  EXPECT_DOUBLE_EQ(total, 7.0);
}

TEST_F(PlannerTest, OrderByAndLimitOnGroupedResult) {
  Table t = Run(
      "SELECT CID, SUM(Dur) AS total FROM Calls GROUP BY CID "
      "ORDER BY total DESC LIMIT 3");
  ASSERT_EQ(t.NumRows(), 3u);
  EXPECT_EQ(t.Get(0, 0).AsInt64(), 6);  // 1044+1130 = 2174 is the max
  EXPECT_GE(t.Get(0, 1).AsDouble(), t.Get(1, 1).AsDouble());
  EXPECT_GE(t.Get(1, 1).AsDouble(), t.Get(2, 1).AsDouble());
}

TEST_F(PlannerTest, OrderByLimitOnFlatResult) {
  Table t = Run("SELECT Dur FROM Calls ORDER BY Dur DESC LIMIT 2");
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.Get(0, 0).AsInt64(), 1130);
  EXPECT_EQ(t.Get(1, 0).AsInt64(), 1044);
}

TEST_F(PlannerTest, TableAliases) {
  Table t = Run(
      "SELECT c.ID FROM Cust c, Calls l "
      "WHERE c.ID = l.CID AND l.Mo = 3 AND c.Plan = 'E'");
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.Get(0, 0).AsInt64(), 6);
}

TEST_F(PlannerTest, ResidualNonEquiJoinPredicate) {
  // Join condition plus a cross-table inequality filter.
  Table t = Run(
      "SELECT Cust.ID FROM Cust, Calls "
      "WHERE Cust.ID = Calls.CID AND Calls.Dur > Cust.Zip - 9500 "
      "AND Calls.Mo = 1");
  // Dur > Zip-9500: zip 10001 -> Dur>501: cust1 (522). zip 10002 -> Dur>502:
  // cust3 (779), cust6 (1044), cust7 (697).
  EXPECT_EQ(t.NumRows(), 4u);
}

TEST_F(PlannerTest, CrossJoinWhenNoEdge) {
  Table t = Run("SELECT Cust.ID FROM Cust, Plans WHERE Plans.Mo = 1");
  EXPECT_EQ(t.NumRows(), 7u * 7u);
}

TEST_F(PlannerTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(RunSql(db_, "SELECT x FROM NoSuchTable").ok());
  EXPECT_FALSE(RunSql(db_, "SELECT NoSuchCol FROM Cust").ok());
  EXPECT_FALSE(
      RunSql(db_, "SELECT Plan, SUM(ID) FROM Cust GROUP BY Zip").ok());
  EXPECT_FALSE(RunSql(db_, "SELECT Zip FROM Cust GROUP BY Zip").ok());
  // Ambiguous: Mo exists in Calls and Plans.
  EXPECT_FALSE(RunSql(db_, "SELECT Cust.ID FROM Calls, Cust, Plans "
                           "WHERE Mo = 1 AND Cust.ID = Calls.CID").ok());
}

TEST_F(PlannerTest, MultipleAggregatesInOneQuery) {
  Table t = Run(
      "SELECT Mo, SUM(Dur) AS s, COUNT(*) AS n, MIN(Dur) AS mn, "
      "MAX(Dur) AS mx, AVG(Dur) AS av FROM Calls GROUP BY Mo");
  ASSERT_EQ(t.NumRows(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(t.Get(i, 2).AsDouble(), 7.0);  // 7 calls per month
    EXPECT_LE(t.Get(i, 3).AsDouble(), t.Get(i, 4).AsDouble());
    EXPECT_NEAR(t.Get(i, 5).AsDouble() * 7.0, t.Get(i, 1).AsDouble(), 1e-9);
  }
}

}  // namespace
}  // namespace cobra::rel::sql
