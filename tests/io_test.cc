// Tests for the compressed-provenance package (core/io): serialization
// round trips, format errors, and the meta-analyst -> analyst workflow the
// paper motivates (compress on one machine, assign on another).

#include "core/io.h"

#include <gtest/gtest.h>

#include "core/compressor.h"
#include "core/tree.h"
#include "data/example_db.h"
#include "prov/eval_program.h"
#include "prov/parser.h"

namespace cobra::core {
namespace {

class IoTest : public ::testing::Test {
 protected:
  /// Compresses the running example at `bound` and packages the result.
  CompressedPackage MakeExamplePackage(std::size_t bound) {
    tree_ = ParseTree(data::kFigure2TreeText, &pool_).ValueOrDie();
    polys_ = prov::ParsePolySet(data::kExamplePolynomialsText, &pool_)
                 .ValueOrDie();
    CompressionRequest request;
    request.bound = bound;
    outcome_ = Compress(polys_, tree_, request, &pool_).ValueOrDie();
    prov::Valuation base(pool_);
    return MakePackage(outcome_->abstraction, base, pool_);
  }

  prov::VarPool pool_;
  AbstractionTree tree_;
  prov::PolySet polys_;
  std::optional<CompressionOutcome> outcome_;
};

TEST_F(IoTest, PackageCarriesCompressedPolynomials) {
  CompressedPackage package = MakeExamplePackage(8);
  EXPECT_EQ(package.polynomials.TotalMonomials(),
            outcome_->report.compressed_size);
  EXPECT_EQ(package.polynomials.size(), 2u);
  EXPECT_FALSE(package.meta_groups.empty());
}

TEST_F(IoTest, SerializeParseRoundTrip) {
  CompressedPackage package = MakeExamplePackage(8);
  std::string text = SerializePackage(package, pool_);

  prov::VarPool analyst_pool;  // fresh pool: the analyst's machine
  CompressedPackage loaded =
      ParsePackage(text, &analyst_pool).ValueOrDie();
  ASSERT_EQ(loaded.polynomials.size(), package.polynomials.size());
  EXPECT_EQ(loaded.polynomials.TotalMonomials(),
            package.polynomials.TotalMonomials());
  EXPECT_EQ(loaded.meta_groups.size(), package.meta_groups.size());
  EXPECT_EQ(loaded.defaults.size(), package.defaults.size());
  // Labels and group names survive.
  EXPECT_EQ(loaded.polynomials.label(0), package.polynomials.label(0));
  EXPECT_EQ(loaded.meta_groups[0].first, package.meta_groups[0].first);
  EXPECT_EQ(loaded.meta_groups[0].second, package.meta_groups[0].second);
}

TEST_F(IoTest, AnalystCanEvaluateScenariosFromPackageAlone) {
  CompressedPackage package = MakeExamplePackage(8);
  std::string text = SerializePackage(package, pool_);

  // Analyst side: no tree, no full provenance, fresh variable pool.
  prov::VarPool analyst_pool;
  CompressedPackage loaded = ParsePackage(text, &analyst_pool).ValueOrDie();
  prov::Valuation scenario(analyst_pool);
  // March -20% — same scenario on both sides.
  scenario.SetByName(analyst_pool, "m3", 0.8).CheckOK();
  prov::EvalProgram program(loaded.polynomials);
  std::vector<double> analyst_answers;
  program.Eval(scenario, &analyst_answers);

  // Meta-analyst side: same scenario on the original compressed set.
  prov::Valuation original(pool_);
  original.SetByName(pool_, "m3", 0.8).CheckOK();
  for (std::size_t i = 0; i < polys_.size(); ++i) {
    EXPECT_NEAR(analyst_answers[i],
                outcome_->abstraction.compressed.poly(i).Eval(original),
                1e-9);
  }
}

TEST_F(IoTest, DefaultsRecordNonNeutralMetaValues) {
  tree_ = ParseTree(data::kFigure2TreeText, &pool_).ValueOrDie();
  polys_ =
      prov::ParsePolySet(data::kExamplePolynomialsText, &pool_).ValueOrDie();
  CompressionRequest request;
  request.bound = 4;  // root cut {Plans}
  outcome_ = Compress(polys_, tree_, request, &pool_).ValueOrDie();
  prov::Valuation base(pool_);
  base.SetByName(pool_, "b1", 3.0).CheckOK();
  CompressedPackage package =
      MakePackage(outcome_->abstraction, base, pool_);
  // Plans default = avg over 11 leaves with b1=3 -> (3 + 10)/11 != 1.
  bool found = false;
  for (const auto& [name, value] : package.defaults) {
    if (name == "Plans") {
      found = true;
      EXPECT_NEAR(value, 13.0 / 11.0, 1e-12);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(IoTest, FileRoundTrip) {
  CompressedPackage package = MakeExamplePackage(6);
  std::string path = ::testing::TempDir() + "/cobra_package_test.txt";
  ASSERT_TRUE(SavePackage(package, pool_, path).ok());
  prov::VarPool analyst_pool;
  CompressedPackage loaded = LoadPackage(path, &analyst_pool).ValueOrDie();
  EXPECT_EQ(loaded.polynomials.TotalMonomials(),
            package.polynomials.TotalMonomials());
  EXPECT_FALSE(LoadPackage("/no/such/package.txt", &analyst_pool).ok());
}

TEST_F(IoTest, ParseRejectsMalformedPackages) {
  prov::VarPool pool;
  EXPECT_FALSE(ParsePackage("content before section\n", &pool).ok());
  EXPECT_FALSE(
      ParsePackage("[meta]\nMissingArrow b1 b2\n", &pool).ok());
  EXPECT_FALSE(ParsePackage("[defaults]\nno_equals\n", &pool).ok());
  EXPECT_FALSE(ParsePackage("[defaults]\nx = notanumber\n", &pool).ok());
  EXPECT_FALSE(ParsePackage("[polynomials]\nP = x +\n", &pool).ok());
  // Empty package is fine (no sections, no content).
  EXPECT_TRUE(ParsePackage("# just a comment\n", &pool).ok());
}

TEST_F(IoTest, CommentsAndBlankLinesIgnored) {
  prov::VarPool pool;
  CompressedPackage loaded = ParsePackage(
                                 "# header\n[polynomials]\n\nP = 2 * x\n"
                                 "[meta]\n# note\nG <- x y\n"
                                 "[defaults]\nG = 0.5\n",
                                 &pool)
                                 .ValueOrDie();
  EXPECT_EQ(loaded.polynomials.size(), 1u);
  ASSERT_EQ(loaded.meta_groups.size(), 1u);
  EXPECT_EQ(loaded.meta_groups[0].second,
            (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(loaded.defaults.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.defaults[0].second, 0.5);
}

}  // namespace
}  // namespace cobra::core
