// Tests for the compressed-provenance package (core/io): serialization
// round trips, format errors, and the meta-analyst -> analyst workflow the
// paper motivates (compress on one machine, assign on another).

#include "core/io.h"

#include <gtest/gtest.h>

#include "core/compressor.h"
#include "core/tree.h"
#include "data/example_db.h"
#include "prov/eval_program.h"
#include "prov/parser.h"
#include "util/csv.h"

namespace cobra::core {
namespace {

class IoTest : public ::testing::Test {
 protected:
  /// Compresses the running example at `bound` and packages the result.
  CompressedPackage MakeExamplePackage(std::size_t bound) {
    tree_ = ParseTree(data::kFigure2TreeText, &pool_).ValueOrDie();
    polys_ = prov::ParsePolySet(data::kExamplePolynomialsText, &pool_)
                 .ValueOrDie();
    CompressionRequest request;
    request.bound = bound;
    outcome_ = Compress(polys_, tree_, request, &pool_).ValueOrDie();
    prov::Valuation base(pool_);
    return MakePackage(outcome_->abstraction, base, pool_);
  }

  prov::VarPool pool_;
  AbstractionTree tree_;
  prov::PolySet polys_;
  std::optional<CompressionOutcome> outcome_;
};

TEST_F(IoTest, PackageCarriesCompressedPolynomials) {
  CompressedPackage package = MakeExamplePackage(8);
  EXPECT_EQ(package.polynomials.TotalMonomials(),
            outcome_->report.compressed_size);
  EXPECT_EQ(package.polynomials.size(), 2u);
  EXPECT_FALSE(package.meta_groups.empty());
}

TEST_F(IoTest, SerializeParseRoundTrip) {
  CompressedPackage package = MakeExamplePackage(8);
  std::string text = SerializePackage(package, pool_).ValueOrDie();

  prov::VarPool analyst_pool;  // fresh pool: the analyst's machine
  CompressedPackage loaded =
      ParsePackage(text, &analyst_pool).ValueOrDie();
  ASSERT_EQ(loaded.polynomials.size(), package.polynomials.size());
  EXPECT_EQ(loaded.polynomials.TotalMonomials(),
            package.polynomials.TotalMonomials());
  EXPECT_EQ(loaded.meta_groups.size(), package.meta_groups.size());
  EXPECT_EQ(loaded.defaults.size(), package.defaults.size());
  // Labels and group names survive.
  EXPECT_EQ(loaded.polynomials.label(0), package.polynomials.label(0));
  EXPECT_EQ(loaded.meta_groups[0].first, package.meta_groups[0].first);
  EXPECT_EQ(loaded.meta_groups[0].second, package.meta_groups[0].second);
}

TEST_F(IoTest, AnalystCanEvaluateScenariosFromPackageAlone) {
  CompressedPackage package = MakeExamplePackage(8);
  std::string text = SerializePackage(package, pool_).ValueOrDie();

  // Analyst side: no tree, no full provenance, fresh variable pool.
  prov::VarPool analyst_pool;
  CompressedPackage loaded = ParsePackage(text, &analyst_pool).ValueOrDie();
  prov::Valuation scenario(analyst_pool);
  // March -20% — same scenario on both sides.
  scenario.SetByName(analyst_pool, "m3", 0.8).CheckOK();
  prov::EvalProgram program(loaded.polynomials);
  std::vector<double> analyst_answers;
  program.Eval(scenario, &analyst_answers);

  // Meta-analyst side: same scenario on the original compressed set.
  prov::Valuation original(pool_);
  original.SetByName(pool_, "m3", 0.8).CheckOK();
  for (std::size_t i = 0; i < polys_.size(); ++i) {
    EXPECT_NEAR(analyst_answers[i],
                outcome_->abstraction.compressed.poly(i).Eval(original),
                1e-9);
  }
}

TEST_F(IoTest, DefaultsRecordNonNeutralMetaValues) {
  tree_ = ParseTree(data::kFigure2TreeText, &pool_).ValueOrDie();
  polys_ =
      prov::ParsePolySet(data::kExamplePolynomialsText, &pool_).ValueOrDie();
  CompressionRequest request;
  request.bound = 4;  // root cut {Plans}
  outcome_ = Compress(polys_, tree_, request, &pool_).ValueOrDie();
  prov::Valuation base(pool_);
  base.SetByName(pool_, "b1", 3.0).CheckOK();
  CompressedPackage package =
      MakePackage(outcome_->abstraction, base, pool_);
  // Plans default = avg over 11 leaves with b1=3 -> (3 + 10)/11 != 1.
  bool found = false;
  for (const auto& [name, value] : package.defaults) {
    if (name == "Plans") {
      found = true;
      EXPECT_NEAR(value, 13.0 / 11.0, 1e-12);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(IoTest, FileRoundTrip) {
  CompressedPackage package = MakeExamplePackage(6);
  std::string path = ::testing::TempDir() + "/cobra_package_test.txt";
  ASSERT_TRUE(SavePackage(package, pool_, path).ok());
  prov::VarPool analyst_pool;
  CompressedPackage loaded = LoadPackage(path, &analyst_pool).ValueOrDie();
  EXPECT_EQ(loaded.polynomials.TotalMonomials(),
            package.polynomials.TotalMonomials());
  EXPECT_FALSE(LoadPackage("/no/such/package.txt", &analyst_pool).ok());
}

TEST_F(IoTest, ParseRejectsMalformedPackages) {
  prov::VarPool pool;
  EXPECT_FALSE(ParsePackage("content before section\n", &pool).ok());
  EXPECT_FALSE(
      ParsePackage("[meta]\nMissingArrow b1 b2\n", &pool).ok());
  EXPECT_FALSE(ParsePackage("[defaults]\nno_equals\n", &pool).ok());
  EXPECT_FALSE(ParsePackage("[defaults]\nx = notanumber\n", &pool).ok());
  EXPECT_FALSE(ParsePackage("[polynomials]\nP = x +\n", &pool).ok());
  // Empty package is fine (no sections, no content).
  EXPECT_TRUE(ParsePackage("# just a comment\n", &pool).ok());
}

// Names containing the format's own delimiters (`=`, `#`, `<-`), any
// whitespace, or other non-identifier characters used to serialize fine and
// then parse back as something else (or fail), silently corrupting the
// round trip. Serialization now rejects them with InvalidArgument.
TEST_F(IoTest, SerializeRejectsNamesThatCannotRoundTrip) {
  const std::vector<std::string> bad_names = {
      "a=b", "a#b", "a<-b", " leading", "trailing ", "two words", "", "x+y",
      "x*y"};

  for (const std::string& bad : bad_names) {
    // As a defaults entry.
    {
      prov::VarPool pool;
      CompressedPackage package;
      package.defaults.emplace_back(bad, 0.5);
      util::Result<std::string> text = SerializePackage(package, pool);
      ASSERT_FALSE(text.ok()) << "defaults name: \"" << bad << "\"";
      EXPECT_EQ(text.status().code(), util::StatusCode::kInvalidArgument);
    }
    // As a meta-group name and as a leaf.
    {
      prov::VarPool pool;
      CompressedPackage package;
      package.meta_groups.emplace_back(bad,
                                       std::vector<std::string>{"leaf"});
      EXPECT_FALSE(SerializePackage(package, pool).ok())
          << "meta name: \"" << bad << "\"";
    }
    if (!bad.empty()) {
      prov::VarPool pool;
      CompressedPackage package;
      package.meta_groups.emplace_back("Group",
                                       std::vector<std::string>{bad});
      EXPECT_FALSE(SerializePackage(package, pool).ok())
          << "leaf name: \"" << bad << "\"";
    }
    // As a polynomial variable (resolved through the pool).
    if (!bad.empty()) {
      prov::VarPool pool;
      prov::VarId var = pool.Intern(bad);
      CompressedPackage package;
      package.polynomials.Add("P", prov::Polynomial::Var(var));
      EXPECT_FALSE(SerializePackage(package, pool).ok())
          << "polynomial variable: \"" << bad << "\"";
    }
  }

  // Labels may contain spaces, but '='/comment/section lookalikes and
  // untrimmed whitespace would not survive the round trip.
  for (const char* bad_label :
       {"a = b", "#comment", "[polynomials]", " padded ", ""}) {
    prov::VarPool pool;
    prov::VarId var = pool.Intern("x");
    CompressedPackage package;
    package.polynomials.Add(bad_label, prov::Polynomial::Var(var));
    EXPECT_FALSE(SerializePackage(package, pool).ok())
        << "label: \"" << bad_label << "\"";
  }

  // Digit- or dot-leading names lex as *numbers* inside a polynomial
  // ("1e5" would re-parse as the constant 100000), so they are rejected as
  // polynomial variables — but stay fine in [meta]/[defaults], whose
  // parsers split on '<-'/'=' instead.
  for (const char* numeric : {"1e5", "2024", "2x", ".5"}) {
    prov::VarPool pool;
    prov::VarId var = pool.Intern(numeric);
    CompressedPackage package;
    package.polynomials.Add("P", prov::Polynomial::Var(var));
    EXPECT_FALSE(SerializePackage(package, pool).ok())
        << "numeric-leading polynomial variable: \"" << numeric << "\"";
  }

  // SavePackage propagates the validation failure instead of writing a
  // corrupt file.
  prov::VarPool pool;
  CompressedPackage package;
  package.defaults.emplace_back("has space", 1.5);
  const std::string path = ::testing::TempDir() + "/cobra_invalid_pkg.txt";
  util::Status saved = SavePackage(package, pool, path);
  ASSERT_FALSE(saved.ok());
  EXPECT_EQ(saved.code(), util::StatusCode::kInvalidArgument);
}

TEST_F(IoTest, ValidNamesStillRoundTrip) {
  prov::VarPool pool;
  CompressedPackage package;
  package.polynomials.Add(
      "zip 10001", prov::Polynomial::Var(pool.Intern("plan_1.q2")));
  package.meta_groups.emplace_back(
      "Biz.2024", std::vector<std::string>{"b_1", "b.2"});
  package.defaults.emplace_back("Biz.2024", 0.75);
  // Digit-leading names are representable outside polynomials.
  package.meta_groups.emplace_back("1994q2",
                                   std::vector<std::string>{"b_1"});
  std::string text = SerializePackage(package, pool).ValueOrDie();

  prov::VarPool analyst_pool;
  CompressedPackage loaded = ParsePackage(text, &analyst_pool).ValueOrDie();
  ASSERT_EQ(loaded.polynomials.size(), 1u);
  EXPECT_EQ(loaded.polynomials.label(0), "zip 10001");
  ASSERT_EQ(loaded.meta_groups.size(), 2u);
  EXPECT_EQ(loaded.meta_groups[0].first, "Biz.2024");
  EXPECT_EQ(loaded.meta_groups[0].second,
            (std::vector<std::string>{"b_1", "b.2"}));
  EXPECT_EQ(loaded.meta_groups[1].first, "1994q2");
  ASSERT_EQ(loaded.defaults.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.defaults[0].second, 0.75);
}

// Load failures must say which file failed and why: a generic parse error
// with no path is useless when a serving tier loads dozens of packages.
TEST_F(IoTest, LoadPackageNamesThePathAndTheProblem) {
  prov::VarPool pool;

  // Missing file.
  util::Result<CompressedPackage> missing =
      LoadPackage("/no/such/dir/pkg.txt", &pool);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("/no/such/dir/pkg.txt"),
            std::string::npos);
  // Transient: the package may simply not be published yet.
  EXPECT_EQ(missing.status().code(), util::StatusCode::kUnavailable);
  EXPECT_TRUE(util::IsRetryable(missing.status()));

  // Empty file.
  const std::string empty_path = ::testing::TempDir() + "/cobra_empty_pkg.txt";
  ASSERT_TRUE(util::WriteFile(empty_path, "").ok());
  util::Result<CompressedPackage> empty = LoadPackage(empty_path, &pool);
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.status().message().find(empty_path), std::string::npos);
  EXPECT_NE(empty.status().message().find("empty"), std::string::npos);
  // An empty file looks like a writer that has not flushed yet: transient.
  EXPECT_EQ(empty.status().code(), util::StatusCode::kUnavailable);

  // Whitespace-only counts as empty, too.
  ASSERT_TRUE(util::WriteFile(empty_path, "\n  \n").ok());
  EXPECT_FALSE(LoadPackage(empty_path, &pool).ok());

  // Truncated/malformed body: the path and the line diagnostic both appear.
  const std::string bad_path = ::testing::TempDir() + "/cobra_bad_pkg.txt";
  ASSERT_TRUE(util::WriteFile(bad_path, "[meta]\nGroup <-\n").ok());
  util::Result<CompressedPackage> bad = LoadPackage(bad_path, &pool);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find(bad_path), std::string::npos);
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
  // A malformed body is permanent: re-reading reproduces the failure.
  EXPECT_EQ(bad.status().code(), util::StatusCode::kDataLoss);
  EXPECT_FALSE(util::IsRetryable(bad.status()));
}

TEST_F(IoTest, CommentsAndBlankLinesIgnored) {
  prov::VarPool pool;
  CompressedPackage loaded = ParsePackage(
                                 "# header\n[polynomials]\n\nP = 2 * x\n"
                                 "[meta]\n# note\nG <- x y\n"
                                 "[defaults]\nG = 0.5\n",
                                 &pool)
                                 .ValueOrDie();
  EXPECT_EQ(loaded.polynomials.size(), 1u);
  ASSERT_EQ(loaded.meta_groups.size(), 1u);
  EXPECT_EQ(loaded.meta_groups[0].second,
            (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(loaded.defaults.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.defaults[0].second, 0.5);
}

}  // namespace
}  // namespace cobra::core
