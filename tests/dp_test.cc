// Tests for the optimal single-tree DP: exact results on the paper's
// example, optimality against the brute-force oracle on random instances,
// feasibility handling and the explain trace.

#include "core/dp_optimal.h"

#include <gtest/gtest.h>

#include "core/apply.h"
#include "core/baselines.h"
#include "data/example_db.h"
#include "prov/parser.h"
#include "util/rng.h"

namespace cobra::core {
namespace {

class DpTest : public ::testing::Test {
 protected:
  void LoadFigure2() {
    tree_ = ParseTree(data::kFigure2TreeText, &pool_).ValueOrDie();
    polys_ = prov::ParsePolySet(data::kExamplePolynomialsText, &pool_)
                 .ValueOrDie();
    profile_ = AnalyzeSingleTree(polys_, tree_, pool_).ValueOrDie();
  }

  prov::VarPool pool_;
  AbstractionTree tree_;
  prov::PolySet polys_;
  TreeProfile profile_;
};

TEST_F(DpTest, UnconstrainedBoundKeepsLeafCut) {
  LoadFigure2();
  CutSolution s = OptimalSingleTreeCut(tree_, profile_, 14).ValueOrDie();
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.compressed_size, 14u);
  EXPECT_EQ(s.num_cut_nodes, 11u);  // all leaves
}

TEST_F(DpTest, TightBoundCollapsesEverything) {
  LoadFigure2();
  CutSolution s = OptimalSingleTreeCut(tree_, profile_, 4).ValueOrDie();
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.compressed_size, 4u);
  EXPECT_EQ(s.num_cut_nodes, 1u);
  EXPECT_EQ(s.cut.ToString(tree_), "{Plans}");
}

TEST_F(DpTest, InfeasibleBoundReportsCoarsestCut) {
  LoadFigure2();
  CutSolution s = OptimalSingleTreeCut(tree_, profile_, 3).ValueOrDie();
  EXPECT_FALSE(s.feasible);
  EXPECT_EQ(s.num_cut_nodes, 1u);
  EXPECT_EQ(s.compressed_size, 4u);  // best possible, still above bound
}

TEST_F(DpTest, IntermediateBoundMaximizesVariables) {
  LoadFigure2();
  // Bound 12: greedy merging of the cheap groups should retain many vars.
  CutSolution s = OptimalSingleTreeCut(tree_, profile_, 12).ValueOrDie();
  EXPECT_TRUE(s.feasible);
  EXPECT_LE(s.compressed_size, 12u);
  // Verify optimality against brute force.
  CutSolution oracle = BruteForceCut(tree_, profile_, 12).ValueOrDie();
  EXPECT_EQ(s.num_cut_nodes, oracle.num_cut_nodes);
  EXPECT_EQ(s.compressed_size, oracle.compressed_size);
}

TEST_F(DpTest, SolutionSizeMatchesSubstitution) {
  LoadFigure2();
  for (std::size_t bound : {4u, 6u, 8u, 10u, 12u, 14u}) {
    CutSolution s = OptimalSingleTreeCut(tree_, profile_, bound).ValueOrDie();
    prov::VarPool scratch = pool_;
    Abstraction abs = ApplyCut(polys_, tree_, s.cut, &scratch).ValueOrDie();
    EXPECT_EQ(abs.compressed_size, s.compressed_size) << "bound " << bound;
    EXPECT_LE(abs.compressed_size, bound);
  }
}

TEST_F(DpTest, ExplainTraceCoversAllNodes) {
  LoadFigure2();
  DpExplain explain;
  CutSolution s =
      OptimalSingleTreeCut(tree_, profile_, 10, &explain).ValueOrDie();
  EXPECT_EQ(explain.nodes.size(), tree_.size());
  std::size_t chosen = 0;
  for (const auto& node : explain.nodes) {
    chosen += node.chosen_in_cut;
    EXPECT_FALSE(node.frontier.empty());
    EXPECT_EQ(node.weight, profile_.weight[node.node]);
    // The frontier is nondecreasing over its *feasible* entries (refinement
    // monotonicity); infeasible k values (e.g. k=2 under a node whose
    // children only admit 1 or 3 cut nodes) appear as +infinity gaps.
    std::size_t last_finite = 0;
    bool seen_finite = false;
    const std::size_t inf_floor = profile_.total_monomials * 100;
    for (std::size_t k = 0; k < node.frontier.size(); ++k) {
      if (node.frontier[k] >= inf_floor) continue;
      if (seen_finite) {
        EXPECT_GE(node.frontier[k], last_finite);
      }
      last_finite = node.frontier[k];
      seen_finite = true;
    }
  }
  EXPECT_EQ(chosen, s.num_cut_nodes);
  EXPECT_FALSE(explain.ToString(tree_).empty());
}

TEST_F(DpTest, RejectsMismatchedProfile) {
  LoadFigure2();
  TreeProfile wrong;
  wrong.weight.assign(3, 1);
  EXPECT_FALSE(OptimalSingleTreeCut(tree_, wrong, 10).ok());
}

// ---- Optimality property: DP == brute force on random instances ----

struct RandomInstance {
  prov::VarPool pool;
  AbstractionTree tree;
  prov::PolySet polys;
};

/// Builds a random tree (<= max_leaves leaves) and random polynomials whose
/// monomials contain at most one tree variable.
RandomInstance MakeInstance(std::uint64_t seed, std::size_t max_leaves) {
  RandomInstance inst;
  util::Rng rng(seed);
  // Random tree: start from root, attach random internal/leaf nodes.
  NodeId root = inst.tree.AddRoot("g0");
  std::vector<NodeId> internals{root};
  std::size_t next_group = 1, next_leaf = 0;
  std::size_t leaves = 2 + rng.NextBelow(max_leaves - 1);
  std::size_t extra_groups = rng.NextBelow(4);
  for (std::size_t i = 0; i < extra_groups; ++i) {
    NodeId parent = internals[rng.NextBelow(internals.size())];
    internals.push_back(
        inst.tree.AddChild(parent, "g" + std::to_string(next_group++)));
  }
  for (std::size_t i = 0; i < leaves; ++i) {
    NodeId parent = internals[rng.NextBelow(internals.size())];
    inst.tree.AddLeaf(parent, "x" + std::to_string(next_leaf++), &inst.pool);
  }
  // Drop childless internals by giving each one a leaf.
  for (NodeId v = 0; v < inst.tree.size(); ++v) {
    if (inst.tree.node(v).children.empty() &&
        inst.tree.node(v).var == prov::kInvalidVar) {
      inst.tree.AddLeaf(v, "x" + std::to_string(next_leaf++), &inst.pool);
    }
  }
  COBRA_CHECK(inst.tree.Validate().ok());

  // Random polynomials.
  std::vector<prov::VarId> tree_vars;
  for (NodeId leaf : inst.tree.Leaves())
    tree_vars.push_back(inst.tree.node(leaf).var);
  std::vector<prov::VarId> noise{inst.pool.Intern("r1"),
                                 inst.pool.Intern("r2")};
  std::size_t num_polys = 1 + rng.NextBelow(3);
  for (std::size_t q = 0; q < num_polys; ++q) {
    std::vector<prov::Term> terms;
    std::size_t n = 1 + rng.NextBelow(15);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<prov::VarPower> factors;
      if (!rng.NextBool(0.15)) {
        factors.push_back({tree_vars[rng.NextBelow(tree_vars.size())], 1});
      }
      if (rng.NextBool(0.7)) {
        factors.push_back({noise[rng.NextBelow(noise.size())],
                           static_cast<std::uint32_t>(1 + rng.NextBelow(2))});
      }
      terms.push_back({prov::Monomial::FromFactors(std::move(factors)),
                       rng.NextDoubleInRange(1.0, 9.0)});
    }
    inst.polys.Add("P" + std::to_string(q),
                   prov::Polynomial::FromTerms(std::move(terms)));
  }
  return inst;
}

class DpOptimalityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DpOptimalityProperty, MatchesBruteForceOracleOnAllBounds) {
  RandomInstance inst = MakeInstance(GetParam(), 8);
  TreeProfile profile =
      AnalyzeSingleTree(inst.polys, inst.tree, inst.pool).ValueOrDie();
  std::size_t total = profile.total_monomials;
  for (std::size_t bound = 0; bound <= total + 1; ++bound) {
    CutSolution dp =
        OptimalSingleTreeCut(inst.tree, profile, bound).ValueOrDie();
    CutSolution oracle = BruteForceCut(inst.tree, profile, bound).ValueOrDie();
    EXPECT_EQ(dp.feasible, oracle.feasible)
        << "seed " << GetParam() << " bound " << bound;
    if (dp.feasible) {
      EXPECT_EQ(dp.num_cut_nodes, oracle.num_cut_nodes)
          << "seed " << GetParam() << " bound " << bound;
      // Among max-variable cuts, both report the minimal achievable size.
      EXPECT_EQ(dp.compressed_size, oracle.compressed_size)
          << "seed " << GetParam() << " bound " << bound;
      EXPECT_LE(dp.compressed_size, bound);
      EXPECT_TRUE(dp.cut.Validate(inst.tree).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpOptimalityProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace cobra::core
