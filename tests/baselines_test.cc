// Tests for the baseline cut-selection algorithms: greedy bottom-up,
// level cut, and the brute-force oracle itself.

#include "core/baselines.h"

#include <gtest/gtest.h>

#include "core/profile.h"
#include "data/example_db.h"
#include "prov/parser.h"
#include "util/rng.h"

namespace cobra::core {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void LoadFigure2() {
    tree_ = ParseTree(data::kFigure2TreeText, &pool_).ValueOrDie();
    polys_ = prov::ParsePolySet(data::kExamplePolynomialsText, &pool_)
                 .ValueOrDie();
    profile_ = AnalyzeSingleTree(polys_, tree_, pool_).ValueOrDie();
  }

  prov::VarPool pool_;
  AbstractionTree tree_;
  prov::PolySet polys_;
  TreeProfile profile_;
};

TEST_F(BaselinesTest, GreedyRespectsBound) {
  LoadFigure2();
  for (std::size_t bound : {4u, 6u, 8u, 10u, 12u, 14u}) {
    CutSolution s = GreedyBottomUpCut(tree_, profile_, bound).ValueOrDie();
    EXPECT_TRUE(s.feasible) << bound;
    EXPECT_LE(s.compressed_size, bound) << bound;
    EXPECT_TRUE(s.cut.Validate(tree_).ok());
  }
}

TEST_F(BaselinesTest, GreedyUnboundedKeepsLeaves) {
  LoadFigure2();
  CutSolution s = GreedyBottomUpCut(tree_, profile_, 100).ValueOrDie();
  EXPECT_EQ(s.num_cut_nodes, 11u);
  EXPECT_EQ(s.compressed_size, 14u);
}

TEST_F(BaselinesTest, GreedyInfeasibleStopsAtRoot) {
  LoadFigure2();
  CutSolution s = GreedyBottomUpCut(tree_, profile_, 1).ValueOrDie();
  EXPECT_FALSE(s.feasible);
  EXPECT_EQ(s.num_cut_nodes, 1u);
}

TEST_F(BaselinesTest, GreedyNeverBeatsOptimal) {
  LoadFigure2();
  for (std::size_t bound = 4; bound <= 14; ++bound) {
    CutSolution greedy = GreedyBottomUpCut(tree_, profile_, bound).ValueOrDie();
    CutSolution optimal =
        OptimalSingleTreeCut(tree_, profile_, bound).ValueOrDie();
    if (greedy.feasible) {
      EXPECT_LE(greedy.num_cut_nodes, optimal.num_cut_nodes) << bound;
    }
  }
}

TEST_F(BaselinesTest, LevelCutPicksFinestFeasibleDepth) {
  LoadFigure2();
  // Bound 14 admits the leaf level (depth 3).
  CutSolution s = LevelCut(tree_, profile_, 14).ValueOrDie();
  EXPECT_TRUE(s.feasible);
  EXPECT_EQ(s.num_cut_nodes, 11u);
  // Bound 10 forces depth 1 ({Business, Special, Standard} = size 10);
  // depth 2 cut {SB,e,F,Y,v,p1,p2} has size 4+2+2+2+2+2+0=...
  CutSolution s10 = LevelCut(tree_, profile_, 10).ValueOrDie();
  EXPECT_TRUE(s10.feasible);
  EXPECT_LE(s10.compressed_size, 10u);
}

TEST_F(BaselinesTest, LevelCutInfeasibleReturnsRootLevel) {
  LoadFigure2();
  CutSolution s = LevelCut(tree_, profile_, 1).ValueOrDie();
  EXPECT_FALSE(s.feasible);
  EXPECT_EQ(s.num_cut_nodes, 1u);
}

TEST_F(BaselinesTest, BruteForceRespectsEnumerationLimit) {
  LoadFigure2();
  EXPECT_FALSE(BruteForceCut(tree_, profile_, 10, /*limit=*/5).ok());
}

TEST_F(BaselinesTest, BaselineHierarchyOnRandomWeights) {
  // level-cut <= greedy <= optimal in retained variables, across random
  // weight profiles on the Figure 2 tree.
  LoadFigure2();
  util::Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    TreeProfile p = profile_;
    // Perturb leaf weights, recompute inner weights as bounded sums (the
    // identity only needs monotone subadditivity for the algorithms).
    for (NodeId v : tree_.PostOrder()) {
      if (tree_.node(v).IsLeaf()) {
        p.weight[v] = rng.NextBelow(10);
      } else {
        std::size_t sum = 0, max_child = 0;
        for (NodeId c : tree_.node(v).children) {
          sum += p.weight[c];
          max_child = std::max(max_child, p.weight[c]);
        }
        // Somewhere between max(child) and sum(children).
        p.weight[v] = max_child + rng.NextBelow(sum - max_child + 1);
      }
    }
    p.base_monomials = 0;
    std::size_t full = 0;
    for (NodeId leaf : tree_.Leaves()) full += p.weight[leaf];
    p.total_monomials = full;

    std::size_t bound = rng.NextBelow(full + 2);
    CutSolution optimal = OptimalSingleTreeCut(tree_, p, bound).ValueOrDie();
    CutSolution greedy = GreedyBottomUpCut(tree_, p, bound).ValueOrDie();
    CutSolution level = LevelCut(tree_, p, bound).ValueOrDie();
    CutSolution oracle = BruteForceCut(tree_, p, bound).ValueOrDie();
    EXPECT_EQ(optimal.feasible, oracle.feasible);
    if (oracle.feasible) {
      EXPECT_EQ(optimal.num_cut_nodes, oracle.num_cut_nodes);
      EXPECT_TRUE(greedy.feasible);
      EXPECT_LE(greedy.num_cut_nodes, optimal.num_cut_nodes);
      if (level.feasible) {
        EXPECT_LE(level.num_cut_nodes, optimal.num_cut_nodes);
      }
    }
  }
}

}  // namespace
}  // namespace cobra::core
