// Tests for the compiled EvalProgram: compile/eval round-trips, exponent
// expansion into repeated factors, and the checked (Status-returning)
// rejection of undersized valuations.

#include "prov/eval_program.h"

#include <gtest/gtest.h>

#include "prov/parser.h"
#include "prov/poly_set.h"
#include "prov/valuation.h"
#include "prov/variable.h"

namespace cobra::prov {
namespace {

PolySet Parse(std::string_view text, VarPool* pool) {
  return ParsePolySet(text, pool).ValueOrDie();
}

TEST(EvalProgramCompileTest, RoundTripMatchesNaiveEvaluation) {
  VarPool pool;
  PolySet set = Parse(
      "P1 = 208.8 * p1 * m1 + 240 * p1 * m3 + 12 * y1\n"
      "P2 = 3 * b1 * m1 - 7 * v + 0.5\n"
      "P3 = 0\n",
      &pool);
  EvalProgram program(set);
  EXPECT_EQ(program.NumPolys(), 3u);
  EXPECT_EQ(program.NumTerms(), set.TotalMonomials());

  Valuation valuation(pool);
  valuation.SetByName(pool, "p1", 1.5).CheckOK();
  valuation.SetByName(pool, "m1", 0.8).CheckOK();
  valuation.SetByName(pool, "m3", 1.2).CheckOK();
  valuation.SetByName(pool, "v", 2.0).CheckOK();

  std::vector<double> out;
  program.Eval(valuation, &out);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], set.poly(i).Eval(valuation)) << set.label(i);
  }
}

TEST(EvalProgramCompileTest, ExponentsExpandIntoRepeatedFactors) {
  VarPool pool;
  PolySet set = Parse("P = 2 * x^3 * y + x^2\n", &pool);
  EvalProgram program(set);
  EXPECT_EQ(program.NumPolys(), 1u);
  EXPECT_EQ(program.NumTerms(), 2u);

  Valuation valuation(pool);
  valuation.SetByName(pool, "x", 3.0).CheckOK();
  valuation.SetByName(pool, "y", 5.0).CheckOK();

  std::vector<double> out;
  program.Eval(valuation, &out);
  ASSERT_EQ(out.size(), 1u);
  // 2 * 27 * 5 + 9 = 279: x^3 really multiplies x in three times.
  EXPECT_DOUBLE_EQ(out[0], 279.0);
}

TEST(EvalProgramCompileTest, MinValuationSizeCoversLargestVarId) {
  VarPool pool;
  pool.Intern("a");  // VarId 0, unused by the polynomial.
  PolySet set = Parse("P = b * c\n", &pool);
  EvalProgram program(set);
  // b = VarId 1, c = VarId 2, so valuations must cover 3 variables.
  EXPECT_EQ(program.MinValuationSize(), 3u);
}

TEST(EvalProgramCheckedTest, RejectsUndersizedValuation) {
  VarPool pool;
  PolySet set = Parse("P = x * y + z\n", &pool);
  EvalProgram program(set);
  ASSERT_EQ(program.MinValuationSize(), 3u);

  Valuation small(static_cast<std::size_t>(2));
  std::vector<double> out;
  util::Status status = program.EvalChecked(small, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("valuation"), std::string::npos);
}

TEST(EvalProgramCheckedTest, AcceptsExactlySizedValuation) {
  VarPool pool;
  PolySet set = Parse("P = x * y + z\n", &pool);
  EvalProgram program(set);

  Valuation exact(program.MinValuationSize());  // all-neutral 1.0
  std::vector<double> out;
  ASSERT_TRUE(program.EvalChecked(exact, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);  // 1*1 + 1
}

TEST(EvalProgramCheckedTest, EmptyProgramAcceptsAnyValuation) {
  PolySet set;
  EvalProgram program(set);
  EXPECT_EQ(program.MinValuationSize(), 0u);

  Valuation empty(static_cast<std::size_t>(0));
  std::vector<double> out{1.0, 2.0};
  ASSERT_TRUE(program.EvalChecked(empty, &out).ok());
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace cobra::prov
