// Tests for the compiled EvalProgram: compile/eval round-trips, exponent
// expansion into repeated factors, the checked (Status-returning) rejection
// of undersized valuations, sparse-override evaluation, factor remapping
// (the serving layer's leaf→meta indirection), and polynomial-range
// partitioning.

#include "prov/eval_program.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "prov/parser.h"
#include "prov/poly_set.h"
#include "prov/valuation.h"
#include "prov/variable.h"

namespace cobra::prov {
namespace {

PolySet Parse(std::string_view text, VarPool* pool) {
  return ParsePolySet(text, pool).ValueOrDie();
}

TEST(EvalProgramCompileTest, RoundTripMatchesNaiveEvaluation) {
  VarPool pool;
  PolySet set = Parse(
      "P1 = 208.8 * p1 * m1 + 240 * p1 * m3 + 12 * y1\n"
      "P2 = 3 * b1 * m1 - 7 * v + 0.5\n"
      "P3 = 0\n",
      &pool);
  EvalProgram program(set);
  EXPECT_EQ(program.NumPolys(), 3u);
  EXPECT_EQ(program.NumTerms(), set.TotalMonomials());

  Valuation valuation(pool);
  valuation.SetByName(pool, "p1", 1.5).CheckOK();
  valuation.SetByName(pool, "m1", 0.8).CheckOK();
  valuation.SetByName(pool, "m3", 1.2).CheckOK();
  valuation.SetByName(pool, "v", 2.0).CheckOK();

  std::vector<double> out;
  program.Eval(valuation, &out);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], set.poly(i).Eval(valuation)) << set.label(i);
  }
}

TEST(EvalProgramCompileTest, ExponentsExpandIntoRepeatedFactors) {
  VarPool pool;
  PolySet set = Parse("P = 2 * x^3 * y + x^2\n", &pool);
  EvalProgram program(set);
  EXPECT_EQ(program.NumPolys(), 1u);
  EXPECT_EQ(program.NumTerms(), 2u);

  Valuation valuation(pool);
  valuation.SetByName(pool, "x", 3.0).CheckOK();
  valuation.SetByName(pool, "y", 5.0).CheckOK();

  std::vector<double> out;
  program.Eval(valuation, &out);
  ASSERT_EQ(out.size(), 1u);
  // 2 * 27 * 5 + 9 = 279: x^3 really multiplies x in three times.
  EXPECT_DOUBLE_EQ(out[0], 279.0);
}

TEST(EvalProgramCompileTest, MinValuationSizeCoversLargestVarId) {
  VarPool pool;
  pool.Intern("a");  // VarId 0, unused by the polynomial.
  PolySet set = Parse("P = b * c\n", &pool);
  EvalProgram program(set);
  // b = VarId 1, c = VarId 2, so valuations must cover 3 variables.
  EXPECT_EQ(program.MinValuationSize(), 3u);
}

TEST(EvalProgramCheckedTest, RejectsUndersizedValuation) {
  VarPool pool;
  PolySet set = Parse("P = x * y + z\n", &pool);
  EvalProgram program(set);
  ASSERT_EQ(program.MinValuationSize(), 3u);

  Valuation small(static_cast<std::size_t>(2));
  std::vector<double> out;
  util::Status status = program.EvalChecked(small, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("valuation"), std::string::npos);
}

TEST(EvalProgramCheckedTest, AcceptsExactlySizedValuation) {
  VarPool pool;
  PolySet set = Parse("P = x * y + z\n", &pool);
  EvalProgram program(set);

  Valuation exact(program.MinValuationSize());  // all-neutral 1.0
  std::vector<double> out;
  ASSERT_TRUE(program.EvalChecked(exact, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);  // 1*1 + 1
}

TEST(EvalProgramCheckedTest, EmptyProgramAcceptsAnyValuation) {
  PolySet set;
  EvalProgram program(set);
  EXPECT_EQ(program.MinValuationSize(), 0u);

  Valuation empty(static_cast<std::size_t>(0));
  std::vector<double> out{1.0, 2.0};
  ASSERT_TRUE(program.EvalChecked(empty, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(EvalProgramOverridesTest, OverridesMatchPatchedDenseEvaluation) {
  VarPool pool;
  PolySet set = Parse(
      "P1 = 2 * x^3 * y + 5 * z^2 + 3 * w\n"
      "P2 = x * y + x + y + z\n",
      &pool);
  EvalProgram program(set);

  Valuation base(pool);
  base.SetByName(pool, "x", 1.5).CheckOK();
  base.SetByName(pool, "w", 0.5).CheckOK();

  const VarId y = pool.Find("y");
  const VarId z = pool.Find("z");
  std::vector<VarOverride> overrides = {{y, 2.0}, {z, 0.25}};
  std::sort(overrides.begin(), overrides.end(),
            [](const VarOverride& a, const VarOverride& b) {
              return a.var < b.var;
            });

  Valuation patched = base;
  patched.Set(y, 2.0);
  patched.Set(z, 0.25);

  std::vector<double> want, got;
  program.Eval(patched, &want);
  program.EvalWithOverrides(base, overrides.data(), overrides.size(), &got);
  ASSERT_EQ(got.size(), want.size());
  // Bit-identical, not just close: same factor order, same values.
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);

  // Empty override list is a plain dense scan of the base.
  program.Eval(base, &want);
  program.EvalWithOverrides(base, nullptr, 0, &got);
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
}

TEST(EvalProgramOverridesTest, RangeEvalCoversExactlyTheRequestedPolys) {
  VarPool pool;
  PolySet set = Parse(
      "P1 = x + 1\n"
      "P2 = 2 * x\n"
      "P3 = x * y\n"
      "P4 = 7\n",
      &pool);
  EvalProgram program(set);
  Valuation base(pool);
  const VarId x = pool.Find("x");
  std::vector<VarOverride> overrides = {{x, 3.0}};

  std::vector<double> want;
  program.EvalWithOverrides(base, overrides.data(), 1, &want);

  std::vector<double> got(program.NumPolys(), -1.0);
  program.EvalRangeWithOverrides(base, overrides.data(), 1, 1, 3, got.data());
  EXPECT_EQ(got[0], -1.0);  // outside the range: untouched
  EXPECT_EQ(got[1], want[1]);
  EXPECT_EQ(got[2], want[2]);
  EXPECT_EQ(got[3], -1.0);

  program.EvalRangeWithOverrides(base, overrides.data(), 1, 0, 1, got.data());
  program.EvalRangeWithOverrides(base, overrides.data(), 1, 3, 4, got.data());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
}

TEST(EvalProgramRemapTest, RemappedFactorsReadTheTargetVariable) {
  VarPool pool;
  PolySet set = Parse("P = 2 * x^2 * y + z\n", &pool);
  EvalProgram program(set);
  const VarId x = pool.Find("x");
  const VarId y = pool.Find("y");
  const VarId z = pool.Find("z");
  const VarId g = pool.Intern("G");

  // x and y both collapse to G; z stays itself.
  std::vector<VarId> remap(pool.size());
  for (VarId v = 0; v < remap.size(); ++v) remap[v] = v;
  remap[x] = g;
  remap[y] = g;
  EvalProgram remapped = program.RemapFactors(remap);
  EXPECT_EQ(remapped.NumPolys(), program.NumPolys());
  EXPECT_EQ(remapped.NumTerms(), program.NumTerms());
  EXPECT_EQ(remapped.MinValuationSize(), static_cast<std::size_t>(g) + 1);

  Valuation valuation(pool);
  valuation.Set(g, 3.0);
  valuation.Set(z, 0.5);
  valuation.Set(x, 100.0);  // dead after remapping
  std::vector<double> out;
  remapped.Eval(valuation, &out);
  ASSERT_EQ(out.size(), 1u);
  // 2 * G^2 * G + z = 2*27 + 0.5.
  EXPECT_DOUBLE_EQ(out[0], 54.5);
}

TEST(EvalProgramPartitionTest, BoundariesCoverAllPolysWithoutGaps) {
  VarPool pool;
  std::string text;
  for (int p = 0; p < 23; ++p) {
    text += "P" + std::to_string(p) + " = ";
    // Uneven weights: later polynomials carry more terms.
    for (int t = 0; t <= p % 7; ++t) {
      if (t > 0) text += " + ";
      text += std::to_string(t + 1) + " * x" + std::to_string(t);
    }
    text += "\n";
  }
  PolySet set = Parse(text, &pool);
  EvalProgram program(set);

  for (std::size_t parts : {1u, 2u, 5u, 23u, 100u}) {
    std::vector<std::uint32_t> bounds = program.PartitionPolys(parts);
    ASSERT_GE(bounds.size(), 2u) << parts;
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), program.NumPolys());
    EXPECT_LE(bounds.size() - 1, parts);
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
      EXPECT_LT(bounds[i], bounds[i + 1]) << "empty range at " << i;
    }
  }

  // Degenerate programs still yield a single well-formed range.
  PolySet empty;
  EvalProgram empty_program(empty);
  std::vector<std::uint32_t> bounds = empty_program.PartitionPolys(4);
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[1], 0u);
}

}  // namespace
}  // namespace cobra::prov
