// Tests for the compiled EvalProgram: compile/eval round-trips, exponent
// expansion into repeated factors, the checked (Status-returning) rejection
// of undersized valuations, sparse-override evaluation, factor remapping
// (the serving layer's leaf→meta indirection), and polynomial-range
// partitioning.

#include "prov/eval_program.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "prov/parser.h"
#include "prov/poly_set.h"
#include "prov/valuation.h"
#include "prov/variable.h"
#include "util/rng.h"

namespace cobra::prov {
namespace {

PolySet Parse(std::string_view text, VarPool* pool) {
  return ParsePolySet(text, pool).ValueOrDie();
}

TEST(EvalProgramCompileTest, RoundTripMatchesNaiveEvaluation) {
  VarPool pool;
  PolySet set = Parse(
      "P1 = 208.8 * p1 * m1 + 240 * p1 * m3 + 12 * y1\n"
      "P2 = 3 * b1 * m1 - 7 * v + 0.5\n"
      "P3 = 0\n",
      &pool);
  EvalProgram program(set);
  EXPECT_EQ(program.NumPolys(), 3u);
  EXPECT_EQ(program.NumTerms(), set.TotalMonomials());

  Valuation valuation(pool);
  valuation.SetByName(pool, "p1", 1.5).CheckOK();
  valuation.SetByName(pool, "m1", 0.8).CheckOK();
  valuation.SetByName(pool, "m3", 1.2).CheckOK();
  valuation.SetByName(pool, "v", 2.0).CheckOK();

  std::vector<double> out;
  program.Eval(valuation, &out);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], set.poly(i).Eval(valuation)) << set.label(i);
  }
}

TEST(EvalProgramCompileTest, ExponentsExpandIntoRepeatedFactors) {
  VarPool pool;
  PolySet set = Parse("P = 2 * x^3 * y + x^2\n", &pool);
  EvalProgram program(set);
  EXPECT_EQ(program.NumPolys(), 1u);
  EXPECT_EQ(program.NumTerms(), 2u);

  Valuation valuation(pool);
  valuation.SetByName(pool, "x", 3.0).CheckOK();
  valuation.SetByName(pool, "y", 5.0).CheckOK();

  std::vector<double> out;
  program.Eval(valuation, &out);
  ASSERT_EQ(out.size(), 1u);
  // 2 * 27 * 5 + 9 = 279: x^3 really multiplies x in three times.
  EXPECT_DOUBLE_EQ(out[0], 279.0);
}

TEST(EvalProgramCompileTest, MinValuationSizeCoversLargestVarId) {
  VarPool pool;
  pool.Intern("a");  // VarId 0, unused by the polynomial.
  PolySet set = Parse("P = b * c\n", &pool);
  EvalProgram program(set);
  // b = VarId 1, c = VarId 2, so valuations must cover 3 variables.
  EXPECT_EQ(program.MinValuationSize(), 3u);
}

TEST(EvalProgramCheckedTest, RejectsUndersizedValuation) {
  VarPool pool;
  PolySet set = Parse("P = x * y + z\n", &pool);
  EvalProgram program(set);
  ASSERT_EQ(program.MinValuationSize(), 3u);

  Valuation small(static_cast<std::size_t>(2));
  std::vector<double> out;
  util::Status status = program.EvalChecked(small, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("valuation"), std::string::npos);
}

TEST(EvalProgramCheckedTest, AcceptsExactlySizedValuation) {
  VarPool pool;
  PolySet set = Parse("P = x * y + z\n", &pool);
  EvalProgram program(set);

  Valuation exact(program.MinValuationSize());  // all-neutral 1.0
  std::vector<double> out;
  ASSERT_TRUE(program.EvalChecked(exact, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);  // 1*1 + 1
}

TEST(EvalProgramCheckedTest, EmptyProgramAcceptsAnyValuation) {
  PolySet set;
  EvalProgram program(set);
  EXPECT_EQ(program.MinValuationSize(), 0u);

  Valuation empty(static_cast<std::size_t>(0));
  std::vector<double> out{1.0, 2.0};
  ASSERT_TRUE(program.EvalChecked(empty, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(EvalProgramOverridesTest, OverridesMatchPatchedDenseEvaluation) {
  VarPool pool;
  PolySet set = Parse(
      "P1 = 2 * x^3 * y + 5 * z^2 + 3 * w\n"
      "P2 = x * y + x + y + z\n",
      &pool);
  EvalProgram program(set);

  Valuation base(pool);
  base.SetByName(pool, "x", 1.5).CheckOK();
  base.SetByName(pool, "w", 0.5).CheckOK();

  const VarId y = pool.Find("y");
  const VarId z = pool.Find("z");
  std::vector<VarOverride> overrides = {{y, 2.0}, {z, 0.25}};
  std::sort(overrides.begin(), overrides.end(),
            [](const VarOverride& a, const VarOverride& b) {
              return a.var < b.var;
            });

  Valuation patched = base;
  patched.Set(y, 2.0);
  patched.Set(z, 0.25);

  std::vector<double> want, got;
  program.Eval(patched, &want);
  program.EvalWithOverrides(base, overrides.data(), overrides.size(), &got);
  ASSERT_EQ(got.size(), want.size());
  // Bit-identical, not just close: same factor order, same values.
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);

  // Empty override list is a plain dense scan of the base.
  program.Eval(base, &want);
  program.EvalWithOverrides(base, nullptr, 0, &got);
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
}

TEST(EvalProgramOverridesTest, RangeEvalCoversExactlyTheRequestedPolys) {
  VarPool pool;
  PolySet set = Parse(
      "P1 = x + 1\n"
      "P2 = 2 * x\n"
      "P3 = x * y\n"
      "P4 = 7\n",
      &pool);
  EvalProgram program(set);
  Valuation base(pool);
  const VarId x = pool.Find("x");
  std::vector<VarOverride> overrides = {{x, 3.0}};

  std::vector<double> want;
  program.EvalWithOverrides(base, overrides.data(), 1, &want);

  std::vector<double> got(program.NumPolys(), -1.0);
  program.EvalRangeWithOverrides(base, overrides.data(), 1, 1, 3, got.data());
  EXPECT_EQ(got[0], -1.0);  // outside the range: untouched
  EXPECT_EQ(got[1], want[1]);
  EXPECT_EQ(got[2], want[2]);
  EXPECT_EQ(got[3], -1.0);

  program.EvalRangeWithOverrides(base, overrides.data(), 1, 0, 1, got.data());
  program.EvalRangeWithOverrides(base, overrides.data(), 1, 3, 4, got.data());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]);
}

TEST(EvalProgramRemapTest, RemappedFactorsReadTheTargetVariable) {
  VarPool pool;
  PolySet set = Parse("P = 2 * x^2 * y + z\n", &pool);
  EvalProgram program(set);
  const VarId x = pool.Find("x");
  const VarId y = pool.Find("y");
  const VarId z = pool.Find("z");
  const VarId g = pool.Intern("G");

  // x and y both collapse to G; z stays itself.
  std::vector<VarId> remap(pool.size());
  for (VarId v = 0; v < remap.size(); ++v) remap[v] = v;
  remap[x] = g;
  remap[y] = g;
  EvalProgram remapped = program.RemapFactors(remap);
  EXPECT_EQ(remapped.NumPolys(), program.NumPolys());
  EXPECT_EQ(remapped.NumTerms(), program.NumTerms());
  EXPECT_EQ(remapped.MinValuationSize(), static_cast<std::size_t>(g) + 1);

  Valuation valuation(pool);
  valuation.Set(g, 3.0);
  valuation.Set(z, 0.5);
  valuation.Set(x, 100.0);  // dead after remapping
  std::vector<double> out;
  remapped.Eval(valuation, &out);
  ASSERT_EQ(out.size(), 1u);
  // 2 * G^2 * G + z = 2*27 + 0.5.
  EXPECT_DOUBLE_EQ(out[0], 54.5);
}

TEST(EvalProgramPartitionTest, BoundariesCoverAllPolysWithoutGaps) {
  VarPool pool;
  std::string text;
  for (int p = 0; p < 23; ++p) {
    text += "P" + std::to_string(p) + " = ";
    // Uneven weights: later polynomials carry more terms.
    for (int t = 0; t <= p % 7; ++t) {
      if (t > 0) text += " + ";
      text += std::to_string(t + 1) + " * x" + std::to_string(t);
    }
    text += "\n";
  }
  PolySet set = Parse(text, &pool);
  EvalProgram program(set);

  for (std::size_t parts : {1u, 2u, 5u, 23u, 100u}) {
    std::vector<std::uint32_t> bounds = program.PartitionPolys(parts);
    ASSERT_GE(bounds.size(), 2u) << parts;
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), program.NumPolys());
    EXPECT_LE(bounds.size() - 1, parts);
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
      EXPECT_LT(bounds[i], bounds[i + 1]) << "empty range at " << i;
    }
  }

  // Degenerate programs still yield a single well-formed range.
  PolySet empty;
  EvalProgram empty_program(empty);
  std::vector<std::uint32_t> bounds = empty_program.PartitionPolys(4);
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[1], 0u);
}

TEST(EvalProgramOverridesTest, UndersizedBaseAbortsBeforeTouchingOutput) {
  VarPool pool;
  PolySet set = Parse("P = x * y + z\n", &pool);
  EvalProgram program(set);
  ASSERT_EQ(program.MinValuationSize(), 3u);

  Valuation small(static_cast<std::size_t>(2));
  std::vector<double> out{-1.0, -2.0};
  // Size validation now happens before *out is resized, so the abort fires
  // with the caller's buffer untouched.
  EXPECT_DEATH(program.EvalWithOverrides(small, nullptr, 0, &out),
               "valuation too small");
}

/// Builds a random polynomial set over `num_vars` pooled variables: uneven
/// term counts, coefficients of both signs, exponents up to 5 (so repeated
/// factors are exercised), plus occasional constant and empty polynomials.
PolySet RandomPolySet(util::Rng* rng, VarPool* pool, std::size_t num_vars,
                      std::size_t num_polys) {
  for (std::size_t v = 0; v < num_vars; ++v) {
    pool->Intern("x" + std::to_string(v));
  }
  std::string text;
  for (std::size_t p = 0; p < num_polys; ++p) {
    text += "P" + std::to_string(p) + " = ";
    const std::size_t terms = rng->NextBelow(7);
    if (terms == 0) {
      text += "0\n";
      continue;
    }
    for (std::size_t t = 0; t < terms; ++t) {
      const double coeff = rng->NextDoubleInRange(-4.0, 4.0);
      if (t == 0) {
        if (coeff < 0) text += "- ";
      } else {
        text += coeff < 0 ? " - " : " + ";
      }
      text += std::to_string(std::fabs(coeff));
      const std::size_t factors = rng->NextBelow(4);
      for (std::size_t f = 0; f < factors; ++f) {
        text += " * x" + std::to_string(rng->NextBelow(num_vars));
        if (rng->NextBool(0.3)) {
          text += "^" + std::to_string(rng->NextInRange(2, 5));
        }
      }
    }
    text += "\n";
  }
  return Parse(text, pool);
}

/// Builds a sorted, duplicate-free random override list over `num_vars`
/// variables; may be empty.
std::vector<VarOverride> RandomOverrides(util::Rng* rng,
                                         std::size_t num_vars) {
  std::vector<VarOverride> overrides;
  const std::size_t count = rng->NextBelow(5);
  for (std::size_t o = 0; o < count; ++o) {
    const VarId var = static_cast<VarId>(rng->NextBelow(num_vars));
    bool duplicate = false;
    for (const VarOverride& existing : overrides) {
      if (existing.var == var) duplicate = true;
    }
    if (!duplicate) {
      overrides.push_back({var, rng->NextDoubleInRange(0.0, 3.0)});
    }
  }
  std::sort(overrides.begin(), overrides.end(),
            [](const VarOverride& a, const VarOverride& b) {
              return a.var < b.var;
            });
  return overrides;
}

// The blocked kernel's contract: for every lane count (including ragged
// counts that pad up to the 4-, 8- or 16-wide kernel), every lane's results
// are bit-identical to the scalar sparse path with that lane's override
// list — including lanes with empty lists and overrides of variables that
// never appear in the program.
TEST(EvalProgramBlockedTest, BlockedLanesBitIdenticalToScalarRandomized) {
  util::Rng rng(20260730);
  for (int trial = 0; trial < 25; ++trial) {
    VarPool pool;
    const std::size_t num_vars = 4 + rng.NextBelow(16);
    const std::size_t num_polys = 1 + rng.NextBelow(10);
    PolySet set = RandomPolySet(&rng, &pool, num_vars, num_polys);
    EvalProgram program(set);
    Valuation base(pool);
    for (std::size_t v = 0; v < pool.size(); ++v) {
      base.Set(static_cast<VarId>(v), rng.NextDoubleInRange(0.25, 2.0));
    }

    for (std::size_t num_lanes :
         {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 12u, 15u, 16u}) {
      std::vector<std::vector<VarOverride>> lane_lists(num_lanes);
      OverrideSpan spans[EvalProgram::kMaxLanes];
      for (std::size_t l = 0; l < num_lanes; ++l) {
        lane_lists[l] = RandomOverrides(&rng, pool.size());
        spans[l] = {lane_lists[l].data(), lane_lists[l].size()};
      }
      BlockOverrides block = MakeBlockOverrides(base, spans, num_lanes);
      EXPECT_EQ(block.num_lanes(), num_lanes);
      EXPECT_EQ(block.width(),
                num_lanes <= 4 ? 4u : (num_lanes <= 8 ? 8u : 16u));

      const std::size_t polys = program.NumPolys();
      std::vector<double> blocked(num_lanes * polys, -1.0);
      program.EvalRangeBlocked(base, block, 0, polys, blocked.data(), polys);

      for (std::size_t l = 0; l < num_lanes; ++l) {
        std::vector<double> want;
        program.EvalWithOverrides(base, lane_lists[l].data(),
                                  lane_lists[l].size(), &want);
        for (std::size_t p = 0; p < polys; ++p) {
          EXPECT_EQ(blocked[l * polys + p], want[p])
              << "trial " << trial << " lanes " << num_lanes << " lane " << l
              << " poly " << p;
        }
      }
    }
  }
}

// The SoA execution image is a pure memory re-layout: for randomized
// programs, lane counts (all three kernel widths), poly sub-ranges and
// prefetch distances, the image kernels must stay bit-identical to both
// the AoS blocked kernel and the scalar sparse path.
TEST(EvalProgramBlockedTest, SoAImageBitIdenticalToAoSRandomized) {
  util::Rng rng(20260808);
  for (int trial = 0; trial < 25; ++trial) {
    VarPool pool;
    const std::size_t num_vars = 4 + rng.NextBelow(16);
    const std::size_t num_polys = 1 + rng.NextBelow(12);
    PolySet set = RandomPolySet(&rng, &pool, num_vars, num_polys);
    EvalProgram program(set);
    const EvalImage image = EvalImage::Build(program);
    EXPECT_EQ(image.layout(), EvalLayout::kSoA);
    EXPECT_EQ(image.NumPolys(), program.NumPolys());
    EXPECT_EQ(image.NumTerms(), program.NumTerms());
    EXPECT_EQ(image.MinValuationSize(), program.MinValuationSize());

    Valuation base(pool);
    for (std::size_t v = 0; v < pool.size(); ++v) {
      base.Set(static_cast<VarId>(v), rng.NextDoubleInRange(0.25, 2.0));
    }

    for (std::size_t num_lanes : {1u, 3u, 4u, 6u, 8u, 11u, 16u}) {
      std::vector<std::vector<VarOverride>> lane_lists(num_lanes);
      OverrideSpan spans[EvalProgram::kMaxLanes];
      for (std::size_t l = 0; l < num_lanes; ++l) {
        lane_lists[l] = RandomOverrides(&rng, pool.size());
        spans[l] = {lane_lists[l].data(), lane_lists[l].size()};
      }
      BlockOverrides block = MakeBlockOverrides(base, spans, num_lanes);

      // A random sub-range exercises the image's O(1) cursor seeding from
      // the retained boundary arrays (not just poly 0).
      const std::size_t polys = program.NumPolys();
      const std::size_t begin = rng.NextBelow(polys);
      const std::size_t end = begin + 1 + rng.NextBelow(polys - begin);
      const std::size_t prefetch = rng.NextBelow(3) * 8;  // 0, 8 or 16

      std::vector<double> aos(num_lanes * polys, -1.0);
      program.EvalRangeBlocked(base, block, begin, end, aos.data(), polys);
      std::vector<double> soa(num_lanes * polys, -1.0);
      image.EvalRangeBlocked(base, block, begin, end, soa.data(), polys,
                             prefetch);
      for (std::size_t l = 0; l < num_lanes; ++l) {
        for (std::size_t p = begin; p < end; ++p) {
          EXPECT_EQ(soa[l * polys + p], aos[l * polys + p])
              << "trial " << trial << " lanes " << num_lanes << " lane " << l
              << " poly " << p << " prefetch " << prefetch;
        }
      }

      // Term-range kernel: whole-program partials must agree bitwise too.
      const std::size_t terms = program.NumTerms();
      if (terms == 0) continue;
      std::vector<double> aos_partials(num_lanes * terms, -1.0);
      program.EvalTermRangeBlocked(base, block, 0, terms,
                                   aos_partials.data(), terms);
      std::vector<double> soa_partials(num_lanes * terms, -1.0);
      image.EvalTermRangeBlocked(base, block, 0, terms, soa_partials.data(),
                                 terms, prefetch);
      for (std::size_t i = 0; i < aos_partials.size(); ++i) {
        EXPECT_EQ(soa_partials[i], aos_partials[i])
            << "trial " << trial << " lanes " << num_lanes << " partial "
            << i;
      }
    }
  }
}

TEST(EvalProgramBlockedTest, ImageWithLayoutTagOnlyChangesTheTag) {
  VarPool pool;
  PolySet set = Parse("P = 2 * x + 3 * y\n", &pool);
  EvalProgram program(set);
  const EvalImage image = EvalImage::Build(program);
  const EvalImage tagged = image.WithLayoutTag(EvalLayout::kAoS);
  EXPECT_EQ(tagged.layout(), EvalLayout::kAoS);
  EXPECT_EQ(std::string(EvalLayoutName(tagged.layout())), "AoS");
  EXPECT_EQ(std::string(EvalLayoutName(image.layout())), "SoA");
  EXPECT_EQ(tagged.coeffs().size(), image.coeffs().size());
  EXPECT_EQ(tagged.factors().size(), image.factors().size());
  EXPECT_EQ(tagged.MinValuationSize(), image.MinValuationSize());
}

// The override-union lookup has two O(log k)-or-better paths: a dense
// per-block row index when the union's id span is small, and a binary
// search over the factor-sorted var array when it is wide. Both must
// resolve exactly the same rows, i.e. stay bit-identical to the scalar
// sparse path — here with a union spanning far more than
// kDenseIndexMaxSpan ids so the binary-search path actually runs.
TEST(EvalProgramBlockedTest, WideUnionBinarySearchMatchesScalar) {
  const VarId far = static_cast<VarId>(BlockOverrides::kDenseIndexMaxSpan * 3);
  // One polynomial: 2*x0*x_far + 3*x_far, plus one untouched poly 5*x1.
  EvalProgram program =
      EvalProgram::FromParts({0, 2, 3}, {0, 2, 3, 4}, {2.0, 3.0, 5.0},
                             {0, far, far, 1})
          .ValueOrDie();
  Valuation base(static_cast<std::size_t>(far) + 1);
  for (std::size_t v = 0; v <= far; ++v) {
    base.Set(static_cast<VarId>(v), 1.0 + 1e-6 * static_cast<double>(v % 97));
  }

  std::vector<VarOverride> lane0 = {{0, 0.5}};          // narrow end
  std::vector<VarOverride> lane1 = {{far, 2.25}};       // far end
  std::vector<VarOverride> lane2 = {{0, 3.0}, {far, 0.125}};
  OverrideSpan spans[EvalProgram::kMaxLanes] = {
      {lane0.data(), lane0.size()},
      {lane1.data(), lane1.size()},
      {lane2.data(), lane2.size()}};
  BlockOverrides wide = MakeBlockOverrides(base, spans, 3);
  EXPECT_FALSE(wide.uses_dense_index());
  EXPECT_EQ(wide.union_size(), 2u);

  const std::size_t polys = program.NumPolys();
  std::vector<double> blocked(3 * polys, -1.0);
  program.EvalRangeBlocked(base, wide, 0, polys, blocked.data(), polys);
  const std::vector<VarOverride>* lanes[] = {&lane0, &lane1, &lane2};
  for (std::size_t l = 0; l < 3; ++l) {
    std::vector<double> want;
    program.EvalWithOverrides(base, lanes[l]->data(), lanes[l]->size(),
                              &want);
    for (std::size_t p = 0; p < polys; ++p) {
      EXPECT_EQ(blocked[l * polys + p], want[p]) << "lane " << l;
    }
  }

  // A narrow union over the same base takes the dense-index path and agrees.
  std::vector<VarOverride> near0 = {{0, 0.5}};
  std::vector<VarOverride> near1 = {{1, 4.0}};
  OverrideSpan near_spans[EvalProgram::kMaxLanes] = {
      {near0.data(), near0.size()}, {near1.data(), near1.size()}};
  BlockOverrides narrow = MakeBlockOverrides(base, near_spans, 2);
  EXPECT_TRUE(narrow.uses_dense_index());
  std::vector<double> narrow_out(2 * polys, -1.0);
  program.EvalRangeBlocked(base, narrow, 0, polys, narrow_out.data(), polys);
  const std::vector<VarOverride>* near_lanes[] = {&near0, &near1};
  for (std::size_t l = 0; l < 2; ++l) {
    std::vector<double> want;
    program.EvalWithOverrides(base, near_lanes[l]->data(),
                              near_lanes[l]->size(), &want);
    for (std::size_t p = 0; p < polys; ++p) {
      EXPECT_EQ(narrow_out[l * polys + p], want[p]) << "lane " << l;
    }
  }
}

TEST(EvalProgramBlockedTest, SubRangesComposeToWholeProgram) {
  util::Rng rng(7);
  VarPool pool;
  PolySet set = RandomPolySet(&rng, &pool, 10, 9);
  EvalProgram program(set);
  Valuation base(pool);
  std::vector<VarOverride> ov = {{1, 0.5}, {3, 2.5}};
  OverrideSpan spans[2] = {{ov.data(), ov.size()}, {nullptr, 0}};
  BlockOverrides block = MakeBlockOverrides(base, spans, 2);

  const std::size_t polys = program.NumPolys();
  std::vector<double> whole(2 * polys, 0.0);
  program.EvalRangeBlocked(base, block, 0, polys, whole.data(), polys);

  std::vector<double> pieces(2 * polys, 0.0);
  const std::vector<std::uint32_t> bounds = program.PartitionPolys(4);
  for (std::size_t r = 0; r + 1 < bounds.size(); ++r) {
    program.EvalRangeBlocked(base, block, bounds[r], bounds[r + 1],
                             pieces.data(), polys);
  }
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(pieces[i], whole[i]);
  }
}

TEST(EvalProgramTermRangeTest, WholePolyTermRangeMatchesRangeEval) {
  util::Rng rng(11);
  VarPool pool;
  PolySet set = RandomPolySet(&rng, &pool, 8, 6);
  EvalProgram program(set);
  Valuation base(pool);
  std::vector<VarOverride> ov = {{0, 1.7}, {2, 0.4}};

  std::vector<double> want;
  program.EvalWithOverrides(base, ov.data(), ov.size(), &want);
  for (std::size_t p = 0; p < program.NumPolys(); ++p) {
    const std::vector<std::uint32_t> whole = program.PartitionTerms(p, 1);
    ASSERT_EQ(whole.size(), 2u);
    // One slice = the same additions in the same order: bit-identical.
    EXPECT_EQ(program.EvalTermRangeWithOverrides(base, ov.data(), ov.size(),
                                                 whole[0], whole[1]),
              want[p])
        << "poly " << p;
  }
}

TEST(EvalProgramTermRangeTest, PartitionTermsBoundsWellFormed) {
  util::Rng rng(13);
  VarPool pool;
  PolySet set = RandomPolySet(&rng, &pool, 8, 5);
  EvalProgram program(set);
  for (std::size_t p = 0; p < program.NumPolys(); ++p) {
    for (std::size_t parts : {1u, 2u, 3u, 64u}) {
      const std::vector<std::uint32_t> bounds =
          program.PartitionTerms(p, parts);
      ASSERT_GE(bounds.size(), 2u);
      for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
        EXPECT_LE(bounds[i], bounds[i + 1]);
      }
      EXPECT_LE(bounds.size() - 1, std::max<std::size_t>(parts, 1));
    }
  }
}

TEST(EvalProgramTermRangeTest, SlicedPartialsReduceToPolyValue) {
  VarPool pool;
  // One long polynomial so multi-slice splits are non-trivial.
  std::string text = "P = ";
  for (int t = 0; t < 40; ++t) {
    if (t > 0) text += " + ";
    text += std::to_string(t + 1) + " * x" + std::to_string(t % 7);
    if (t % 3 == 0) text += "^2";
  }
  text += "\n";
  PolySet set = Parse(text, &pool);
  EvalProgram program(set);
  Valuation base(pool);
  std::vector<VarOverride> ov = {{1, 0.9}, {4, 1.3}};
  std::vector<double> want;
  program.EvalWithOverrides(base, ov.data(), ov.size(), &want);

  for (std::size_t parts : {2u, 3u, 8u}) {
    const std::vector<std::uint32_t> bounds = program.PartitionTerms(0, parts);
    double reduced = 0.0;
    for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
      reduced += program.EvalTermRangeWithOverrides(base, ov.data(), ov.size(),
                                                    bounds[k], bounds[k + 1]);
    }
    // The fixed-order reduction may regroup additions, so compare to within
    // a tight relative tolerance, and check it is exactly reproducible.
    EXPECT_NEAR(reduced, want[0], 1e-9 * std::abs(want[0]));
    double again = 0.0;
    for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
      again += program.EvalTermRangeWithOverrides(base, ov.data(), ov.size(),
                                                  bounds[k], bounds[k + 1]);
    }
    EXPECT_EQ(again, reduced);
  }
}

TEST(EvalProgramTermRangeTest, BlockedTermRangeMatchesScalarPartials) {
  util::Rng rng(17);
  VarPool pool;
  PolySet set = RandomPolySet(&rng, &pool, 12, 4);
  EvalProgram program(set);
  Valuation base(pool);
  for (std::size_t v = 0; v < pool.size(); ++v) {
    base.Set(static_cast<VarId>(v), rng.NextDoubleInRange(0.5, 1.5));
  }
  std::vector<std::vector<VarOverride>> lane_lists(5);
  OverrideSpan spans[EvalProgram::kMaxLanes];
  for (std::size_t l = 0; l < lane_lists.size(); ++l) {
    lane_lists[l] = RandomOverrides(&rng, pool.size());
    spans[l] = {lane_lists[l].data(), lane_lists[l].size()};
  }
  BlockOverrides block = MakeBlockOverrides(base, spans, lane_lists.size());

  for (std::size_t p = 0; p < program.NumPolys(); ++p) {
    const std::vector<std::uint32_t> bounds = program.PartitionTerms(p, 3);
    for (std::size_t k = 0; k + 1 < bounds.size(); ++k) {
      double partials[EvalProgram::kMaxLanes];
      program.EvalTermRangeBlocked(base, block, bounds[k], bounds[k + 1],
                                   partials, 1);
      for (std::size_t l = 0; l < lane_lists.size(); ++l) {
        EXPECT_EQ(partials[l],
                  program.EvalTermRangeWithOverrides(
                      base, lane_lists[l].data(), lane_lists[l].size(),
                      bounds[k], bounds[k + 1]))
            << "poly " << p << " slice " << k << " lane " << l;
      }
    }
  }
}

TEST(EvalProgramDominantPolyTest, FindsDominantAndRespectsMinTerms) {
  VarPool pool;
  std::string text = "Small1 = x + y\nSmall2 = 2 * x\nBig = ";
  // Distinct monomials (the parser merges identical ones).
  for (int t = 0; t < 50; ++t) {
    if (t > 0) text += " + ";
    text += std::to_string(t + 1) + " * v" + std::to_string(t) + " * y";
  }
  text += "\n";
  PolySet set = Parse(text, &pool);
  EvalProgram program(set);

  EXPECT_EQ(program.DominantPoly(1), 2u);
  EXPECT_EQ(program.DominantPoly(50), 2u);
  EXPECT_EQ(program.DominantPoly(51), program.NumPolys());  // too few terms
  EXPECT_EQ(program.DominantPoly(0), program.NumPolys());   // disabled

  // A balanced program has no dominant polynomial.
  VarPool pool2;
  PolySet balanced = Parse("A = x + y\nB = 2 * x + z\nC = y + z\n", &pool2);
  EvalProgram balanced_program(balanced);
  EXPECT_EQ(balanced_program.DominantPoly(1), balanced_program.NumPolys());
}

}  // namespace
}  // namespace cobra::prov
