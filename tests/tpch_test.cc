// Tests for the TPC-H substrate: generator invariants (row counts, key
// integrity, spec formulas), query execution, instrumentation and the
// abstraction trees.

#include "data/tpch.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "core/compressor.h"
#include "core/tree.h"
#include "data/dates.h"
#include "data/tpch_queries.h"
#include "rel/sql/planner.h"

namespace cobra::data {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  static const rel::Database& Db() {
    static rel::Database* db = [] {
      TpchConfig config;
      config.scale_factor = 0.01;
      return new rel::Database(GenerateTpch(config));
    }();
    return *db;
  }
};

TEST_F(TpchTest, RowCountsFollowScaleFactor) {
  TpchConfig config;
  config.scale_factor = 0.01;
  EXPECT_EQ(Db().GetTable("region").ValueOrDie()->NumRows(), 5u);
  EXPECT_EQ(Db().GetTable("nation").ValueOrDie()->NumRows(), 25u);
  EXPECT_EQ(Db().GetTable("supplier").ValueOrDie()->NumRows(),
            config.NumSuppliers());
  EXPECT_EQ(Db().GetTable("customer").ValueOrDie()->NumRows(),
            config.NumCustomers());
  EXPECT_EQ(Db().GetTable("part").ValueOrDie()->NumRows(), config.NumParts());
  EXPECT_EQ(Db().GetTable("partsupp").ValueOrDie()->NumRows(),
            config.NumParts() * 4u);
  EXPECT_EQ(Db().GetTable("orders").ValueOrDie()->NumRows(),
            config.NumOrders());
  // 1..7 lines per order.
  std::size_t lines = Db().GetTable("lineitem").ValueOrDie()->NumRows();
  EXPECT_GE(lines, config.NumOrders());
  EXPECT_LE(lines, config.NumOrders() * 7u);
}

TEST_F(TpchTest, NationRegionMappingIsTheSpecList) {
  EXPECT_STREQ(TpchRegionName(2), "ASIA");
  EXPECT_STREQ(TpchNationName(8), "INDIA");
  EXPECT_EQ(TpchNationRegion(8), 2u);   // INDIA in ASIA
  EXPECT_EQ(TpchNationRegion(6), 3u);   // FRANCE in EUROPE
  EXPECT_EQ(TpchNationRegion(24), 1u);  // UNITED STATES in AMERICA
}

TEST_F(TpchTest, ForeignKeysAreValid) {
  const rel::AnnotatedTable& lineitem = *Db().GetTable("lineitem").ValueOrDie();
  const rel::AnnotatedTable& orders = *Db().GetTable("orders").ValueOrDie();
  std::size_t num_orders = orders.NumRows();
  std::size_t num_parts = Db().GetTable("part").ValueOrDie()->NumRows();
  std::size_t num_suppliers =
      Db().GetTable("supplier").ValueOrDie()->NumRows();
  for (std::size_t r = 0; r < lineitem.NumRows(); r += 131) {
    std::int64_t okey = lineitem.table.Get(r, 0).AsInt64();
    std::int64_t pkey = lineitem.table.Get(r, 2).AsInt64();
    std::int64_t skey = lineitem.table.Get(r, 3).AsInt64();
    EXPECT_GE(okey, 1);
    EXPECT_LE(okey, static_cast<std::int64_t>(num_orders));
    EXPECT_GE(pkey, 1);
    EXPECT_LE(pkey, static_cast<std::int64_t>(num_parts));
    EXPECT_GE(skey, 1);
    EXPECT_LE(skey, static_cast<std::int64_t>(num_suppliers));
  }
}

TEST_F(TpchTest, LineitemSupplierComesFromPartsupp) {
  // l_suppkey must be one of the four partsupp suppliers of l_partkey.
  const rel::AnnotatedTable& lineitem = *Db().GetTable("lineitem").ValueOrDie();
  const rel::AnnotatedTable& partsupp = *Db().GetTable("partsupp").ValueOrDie();
  std::unordered_set<std::uint64_t> pairs;
  for (std::size_t r = 0; r < partsupp.NumRows(); ++r) {
    pairs.insert(static_cast<std::uint64_t>(
                     partsupp.table.Get(r, 0).AsInt64()) << 32 |
                 static_cast<std::uint64_t>(partsupp.table.Get(r, 1).AsInt64()));
  }
  for (std::size_t r = 0; r < lineitem.NumRows(); r += 97) {
    std::uint64_t key =
        static_cast<std::uint64_t>(lineitem.table.Get(r, 2).AsInt64()) << 32 |
        static_cast<std::uint64_t>(lineitem.table.Get(r, 3).AsInt64());
    EXPECT_TRUE(pairs.count(key) > 0) << "row " << r;
  }
}

TEST_F(TpchTest, RetailPriceFollowsSpecFormula) {
  const rel::AnnotatedTable& part = *Db().GetTable("part").ValueOrDie();
  for (std::size_t r = 0; r < part.NumRows(); r += 53) {
    std::int64_t key = part.table.Get(r, 0).AsInt64();
    double expected = (90000.0 + ((key / 10) % 20001) + 100.0 * (key % 1000)) /
                      100.0;
    EXPECT_DOUBLE_EQ(part.table.Get(r, 4).AsDouble(), expected);
  }
}

TEST_F(TpchTest, DatesAreValidAndOrdered) {
  const rel::AnnotatedTable& lineitem = *Db().GetTable("lineitem").ValueOrDie();
  for (std::size_t r = 0; r < lineitem.NumRows(); r += 211) {
    std::int64_t ship = lineitem.table.Get(r, 10).AsInt64();
    std::int64_t receipt = lineitem.table.Get(r, 12).AsInt64();
    EXPECT_GE(MonthOf(ship), 1);
    EXPECT_LE(MonthOf(ship), 12);
    EXPECT_GE(YearOf(ship), 1992);
    EXPECT_LE(YearOf(ship), 1999);
    EXPECT_LT(SerialFromPack(ship), SerialFromPack(receipt));
  }
}

TEST_F(TpchTest, DateHelpersRoundTrip) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(PackFromSerial(0), 19700101);
  EXPECT_EQ(AddDays(19920229, 1), 19920301);  // 1992 is a leap year
  EXPECT_EQ(AddDays(19931231, 1), 19940101);
  EXPECT_EQ(SerialFromPack(AddDays(19950617, 121)),
            SerialFromPack(19950617) + 121);
}

TEST_F(TpchTest, GeneratorDeterministic) {
  TpchConfig config;
  config.scale_factor = 0.002;
  rel::Database a = GenerateTpch(config);
  rel::Database b = GenerateTpch(config);
  const rel::AnnotatedTable& la = *a.GetTable("lineitem").ValueOrDie();
  const rel::AnnotatedTable& lb = *b.GetTable("lineitem").ValueOrDie();
  ASSERT_EQ(la.NumRows(), lb.NumRows());
  for (std::size_t r = 0; r < la.NumRows(); r += 101) {
    EXPECT_EQ(la.table.Get(r, 5).AsDouble(), lb.table.Get(r, 5).AsDouble());
  }
}

// ---- Queries ----

class TpchQueryTest : public ::testing::Test {
 protected:
  TpchQueryTest() {
    TpchConfig config;
    config.scale_factor = 0.01;
    db_ = GenerateTpch(config);
  }
  rel::Database db_;
};

TEST_F(TpchQueryTest, AllFiveQueriesRun) {
  for (const TpchQuerySpec& spec : TpchQueries()) {
    auto result = rel::sql::RunSql(db_, spec.sql);
    ASSERT_TRUE(result.ok()) << spec.id << ": " << result.status().ToString();
    EXPECT_TRUE(result->IsGrouped()) << spec.id;
    prov::Valuation neutral(*db_.var_pool());
    rel::Table t = result->Evaluate(neutral);
    EXPECT_GT(t.NumRows(), 0u) << spec.id;
  }
}

TEST_F(TpchQueryTest, Q1HasAtMostFourGroupsAndPositiveSums) {
  TpchQuerySpec q1 = TpchQueryById("Q1").ValueOrDie();
  rel::sql::QueryResult result = rel::sql::RunSql(db_, q1.sql).ValueOrDie();
  prov::Valuation neutral(*db_.var_pool());
  rel::Table t = result.Evaluate(neutral);
  EXPECT_LE(t.NumRows(), 4u);  // (R|A)/F and N/O
  for (std::size_t r = 0; r < t.NumRows(); ++r) {
    EXPECT_GT(t.Get(r, 2).AsDouble(), 0.0);              // sum_qty
    EXPECT_GE(t.Get(r, 3).AsDouble(), t.Get(r, 4).AsDouble());  // base >= disc
  }
}

TEST_F(TpchQueryTest, Q3RespectsLimitAndOrdering) {
  TpchQuerySpec q3 = TpchQueryById("Q3").ValueOrDie();
  rel::sql::QueryResult result = rel::sql::RunSql(db_, q3.sql).ValueOrDie();
  prov::Valuation neutral(*db_.var_pool());
  rel::Table t = result.Evaluate(neutral);
  EXPECT_LE(t.NumRows(), 10u);
  for (std::size_t r = 0; r + 1 < t.NumRows(); ++r) {
    EXPECT_GE(t.Get(r, 1).AsDouble(), t.Get(r + 1, 1).AsDouble());
  }
}

TEST_F(TpchQueryTest, Q6MatchesManualScan) {
  TpchQuerySpec q6 = TpchQueryById("Q6").ValueOrDie();
  rel::sql::QueryResult result = rel::sql::RunSql(db_, q6.sql).ValueOrDie();
  prov::Valuation neutral(*db_.var_pool());
  double via_engine = result.Evaluate(neutral).Get(0, 0).AsDouble();

  const rel::AnnotatedTable& lineitem = *db_.GetTable("lineitem").ValueOrDie();
  double manual = 0.0;
  for (std::size_t r = 0; r < lineitem.NumRows(); ++r) {
    std::int64_t ship = lineitem.table.Get(r, 10).AsInt64();
    double discount = lineitem.table.Get(r, 6).AsDouble();
    std::int64_t qty = lineitem.table.Get(r, 4).AsInt64();
    if (ship >= 19940101 && ship < 19950101 && discount >= 0.05 &&
        discount <= 0.07 && qty < 24) {
      manual += lineitem.table.Get(r, 5).AsDouble() * discount;
    }
  }
  EXPECT_NEAR(via_engine, manual, 1e-6 * (1 + manual));
}

TEST_F(TpchQueryTest, Q5GroupsAreAsianNations) {
  TpchQuerySpec q5 = TpchQueryById("Q5").ValueOrDie();
  rel::sql::QueryResult result = rel::sql::RunSql(db_, q5.sql).ValueOrDie();
  prov::Valuation neutral(*db_.var_pool());
  rel::Table t = result.Evaluate(neutral);
  std::set<std::string> asia;
  for (std::size_t n = 0; n < kTpchNumNations; ++n) {
    if (TpchNationRegion(n) == 2) asia.insert(TpchNationName(n));
  }
  for (std::size_t r = 0; r < t.NumRows(); ++r) {
    EXPECT_TRUE(asia.count(t.Get(r, 0).AsString()) > 0)
        << t.Get(r, 0).AsString();
  }
}

TEST_F(TpchQueryTest, UnknownQueryIdFails) {
  EXPECT_FALSE(TpchQueryById("Q99").ok());
}

// ---- Instrumentation + compression end to end ----

TEST_F(TpchQueryTest, ShipMonthInstrumentationYieldsMonthVariables) {
  InstrumentTpchByShipMonth(&db_).CheckOK();
  TpchQuerySpec q6 = TpchQueryById("Q6").ValueOrDie();
  rel::sql::QueryResult result = rel::sql::RunSql(db_, q6.sql).ValueOrDie();
  prov::PolySet provenance = result.Provenance();
  // Q6 filters to 1994 shipments: exactly the 12 month variables of 1994.
  EXPECT_LE(provenance.NumDistinctVariables(), 12u);
  EXPECT_GE(provenance.NumDistinctVariables(), 6u);
  EXPECT_GE(provenance.TotalMonomials(), 6u);
}

TEST_F(TpchQueryTest, Q6CompressionUnderDateTree) {
  InstrumentTpchByShipMonth(&db_).CheckOK();
  TpchQuerySpec q6 = TpchQueryById("Q6").ValueOrDie();
  prov::PolySet provenance =
      rel::sql::RunSql(db_, q6.sql).ValueOrDie().Provenance();
  core::AbstractionTree tree =
      core::ParseTree(q6.tree_text, db_.mutable_var_pool()).ValueOrDie();
  core::CompressionRequest request;
  request.bound = 4;  // quarters
  auto outcome =
      core::Compress(provenance, tree, request, db_.mutable_var_pool())
          .ValueOrDie();
  EXPECT_TRUE(outcome.report.feasible);
  EXPECT_LE(outcome.report.compressed_size, 4u);
  EXPECT_LT(outcome.report.compressed_size, outcome.report.original_size);
}

TEST_F(TpchQueryTest, Q5ProvenanceIsOneNationPerGroup) {
  // Q5 groups *by* nation: each group's polynomial has exactly one nation
  // variable, so geography abstraction cannot shrink it (monomials never
  // merge across groups). This is the documented negative case.
  InstrumentTpchBySupplierNation(&db_).CheckOK();
  TpchQuerySpec q5 = TpchQueryById("Q5").ValueOrDie();
  prov::PolySet provenance =
      rel::sql::RunSql(db_, q5.sql).ValueOrDie().Provenance();
  ASSERT_GT(provenance.size(), 0u);
  for (std::size_t g = 0; g < provenance.size(); ++g) {
    EXPECT_EQ(provenance.poly(g).NumMonomials(), 1u);
  }
  core::AbstractionTree tree =
      core::ParseTree(q5.tree_text, db_.mutable_var_pool()).ValueOrDie();
  core::TreeProfile profile =
      core::AnalyzeSingleTree(provenance, tree, *db_.var_pool()).ValueOrDie();
  // Even the root cut keeps one monomial per group.
  EXPECT_EQ(profile.SizeOfCut(core::Cut::Root(tree)),
            provenance.TotalMonomials());
}

TEST_F(TpchQueryTest, SegmentVolumeCompressionUnderGeographyTree) {
  // The segment-volume variant has 25 nation variables per group: the
  // geography tree compresses 5*25 monomials down to 5*5 (regions) and
  // further to 5*1 (world).
  InstrumentTpchBySupplierNation(&db_).CheckOK();
  prov::PolySet provenance =
      rel::sql::RunSql(db_, TpchSegmentVolumeQuery()).ValueOrDie()
          .Provenance();
  ASSERT_EQ(provenance.size(), 5u);
  // Up to 5 segments x 25 nations; at SF 0.01 a few (segment, nation)
  // combinations may be unpopulated.
  EXPECT_LE(provenance.TotalMonomials(), 5u * 25u);
  EXPECT_GE(provenance.TotalMonomials(), 5u * 15u);
  core::AbstractionTree tree =
      core::ParseTree(GeographyTreeText(), db_.mutable_var_pool())
          .ValueOrDie();
  core::CompressionRequest request;
  request.bound = 5 * 5;  // at most one monomial per (segment, region)
  auto outcome =
      core::Compress(provenance, tree, request, db_.mutable_var_pool())
          .ValueOrDie();
  EXPECT_TRUE(outcome.report.feasible);
  EXPECT_LE(outcome.report.compressed_size, 25u);
  EXPECT_GE(outcome.report.compressed_size, 5u);
  EXPECT_LT(outcome.report.compressed_size, outcome.report.original_size);
}

TEST_F(TpchQueryTest, BrandRevenueCompressionUnderBrandTree) {
  InstrumentTpchByPartBrand(&db_).CheckOK();
  prov::PolySet provenance =
      rel::sql::RunSql(db_, TpchBrandRevenueQuery()).ValueOrDie()
          .Provenance();
  // Groups: return flags R, A, N; up to 25 brand variables each.
  ASSERT_EQ(provenance.size(), 3u);
  EXPECT_LE(provenance.TotalMonomials(), 3u * 25u);
  EXPECT_GE(provenance.TotalMonomials(), 3u * 20u);

  core::AbstractionTree tree =
      core::ParseTree(BrandTreeText(), db_.mutable_var_pool()).ValueOrDie();
  EXPECT_EQ(tree.Leaves().size(), 25u);
  core::CompressionRequest request;
  request.bound = 3 * 5;  // one monomial per (flag, manufacturer)
  auto outcome =
      core::Compress(provenance, tree, request, db_.mutable_var_pool())
          .ValueOrDie();
  EXPECT_TRUE(outcome.report.feasible);
  EXPECT_LE(outcome.report.compressed_size, 15u);
  // The chosen cut should be the five manufacturer nodes.
  EXPECT_NE(outcome.report.cut_description.find("mfgr"), std::string::npos);
}

TEST_F(TpchQueryTest, BrandInstrumentationUsesBrandNames) {
  InstrumentTpchByPartBrand(&db_).CheckOK();
  const rel::AnnotatedTable& part = *db_.GetTable("part").ValueOrDie();
  std::size_t brand_col = part.schema().Resolve("p_brand").ValueOrDie();
  for (std::size_t r = 0; r < std::min<std::size_t>(part.NumRows(), 50); ++r) {
    std::string brand = part.table.Get(r, brand_col).AsString();
    std::string expected_var = "b_" + brand.substr(brand.find('#') + 1);
    prov::VarId var = db_.var_pool()->Find(expected_var);
    ASSERT_NE(var, prov::kInvalidVar) << expected_var;
    EXPECT_EQ(part.Annotation(r), prov::Polynomial::Var(var));
  }
}

TEST(TpchTrees, ShapesAreConsistent) {
  prov::VarPool pool;
  core::AbstractionTree dates =
      core::ParseTree(ShipDateTreeText(), &pool).ValueOrDie();
  EXPECT_EQ(dates.Leaves().size(), 7u * 12u);
  EXPECT_EQ(dates.MaxDepth(), 3u);
  core::AbstractionTree geo =
      core::ParseTree(GeographyTreeText(), &pool).ValueOrDie();
  EXPECT_EQ(geo.Leaves().size(), 25u);
  EXPECT_EQ(geo.MaxDepth(), 2u);
}

}  // namespace
}  // namespace cobra::data
