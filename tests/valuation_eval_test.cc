// Tests for valuations, PolySet, PolySetStats and the compiled EvalProgram.

#include <gtest/gtest.h>

#include "prov/eval_program.h"
#include "prov/parser.h"
#include "prov/poly_set.h"
#include "prov/stats.h"
#include "prov/valuation.h"
#include "util/rng.h"

namespace cobra::prov {
namespace {

class ValuationTest : public ::testing::Test {
 protected:
  VarPool pool_;
  VarId x_ = pool_.Intern("x");
  VarId y_ = pool_.Intern("y");
};

TEST_F(ValuationTest, DefaultsToNeutralOne) {
  Valuation v(pool_);
  EXPECT_EQ(v.size(), pool_.size());
  EXPECT_DOUBLE_EQ(v.Get(x_), 1.0);
  EXPECT_DOUBLE_EQ(v.Get(y_), 1.0);
}

TEST_F(ValuationTest, SetAndGet) {
  Valuation v(pool_);
  v.Set(x_, 0.8);
  EXPECT_DOUBLE_EQ(v.Get(x_), 0.8);
  EXPECT_DOUBLE_EQ(v.Get(y_), 1.0);
}

TEST_F(ValuationTest, SetByNameFindsVariable) {
  Valuation v(pool_);
  EXPECT_TRUE(v.SetByName(pool_, "x", 2.5).ok());
  EXPECT_DOUBLE_EQ(v.Get(x_), 2.5);
  EXPECT_FALSE(v.SetByName(pool_, "unknown", 1.0).ok());
}

TEST_F(ValuationTest, ResizeKeepsValuesAndAddsNeutral) {
  Valuation v(1);
  v.Set(0, 3.0);
  v.Resize(4);
  EXPECT_DOUBLE_EQ(v.Get(0), 3.0);
  EXPECT_DOUBLE_EQ(v.Get(3), 1.0);
  v.Resize(2);  // shrinking is a no-op
  EXPECT_EQ(v.size(), 4u);
}

TEST_F(ValuationTest, VarPoolInternIsIdempotent) {
  EXPECT_EQ(pool_.Intern("x"), x_);
  EXPECT_EQ(pool_.Find("y"), y_);
  EXPECT_EQ(pool_.Find("zz"), kInvalidVar);
  EXPECT_TRUE(pool_.Contains("x"));
  EXPECT_FALSE(pool_.Contains("zz"));
  EXPECT_EQ(pool_.Name(x_), "x");
}

class PolySetTest : public ::testing::Test {
 protected:
  PolySet MakeSet() {
    PolySet set;
    set.Add("a", ParsePolynomial("2 * x + y", &pool_).ValueOrDie());
    set.Add("b", ParsePolynomial("x * y + 3", &pool_).ValueOrDie());
    return set;
  }
  VarPool pool_;
};

TEST_F(PolySetTest, TotalsAndVariables) {
  PolySet set = MakeSet();
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.TotalMonomials(), 4u);
  EXPECT_EQ(set.NumDistinctVariables(), 2u);
  EXPECT_EQ(set.AllVariables().size(), 2u);
}

TEST_F(PolySetTest, SubstituteAppliesToAll) {
  PolySet set = MakeSet();
  VarId z = pool_.Intern("z");
  std::vector<VarId> mapping{z, z, z};
  PolySet mapped = set.SubstituteVars(mapping);
  EXPECT_EQ(mapped.poly(0),
            ParsePolynomial("3 * z", &pool_).ValueOrDie());
  EXPECT_EQ(mapped.poly(1),
            ParsePolynomial("z^2 + 3", &pool_).ValueOrDie());
  EXPECT_EQ(mapped.label(0), "a");
}

TEST_F(PolySetTest, StatsSummarize) {
  PolySet set = MakeSet();
  PolySetStats stats = ComputeStats(set);
  EXPECT_EQ(stats.num_polys, 2u);
  EXPECT_EQ(stats.num_monomials, 4u);
  EXPECT_EQ(stats.num_variables, 2u);
  EXPECT_EQ(stats.max_degree, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_monomials_per_poly, 2.0);
  EXPECT_EQ(stats.max_monomials_in_poly, 2u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST_F(PolySetTest, EmptyStats) {
  PolySetStats stats = ComputeStats(PolySet());
  EXPECT_EQ(stats.num_polys, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_monomials_per_poly, 0.0);
}

// ---- EvalProgram: compiled evaluation must equal naive evaluation ----

class EvalProgramTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvalProgramTest, MatchesNaiveEvalOnRandomSets) {
  util::Rng rng(GetParam());
  VarPool pool;
  for (int i = 0; i < 6; ++i) pool.Intern("v" + std::to_string(i));

  PolySet set;
  std::size_t num_polys = 1 + rng.NextBelow(5);
  for (std::size_t p = 0; p < num_polys; ++p) {
    std::vector<Term> terms;
    std::size_t n = rng.NextBelow(8);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<VarPower> factors;
      std::size_t k = rng.NextBelow(4);
      for (std::size_t j = 0; j < k; ++j) {
        factors.push_back({static_cast<VarId>(rng.NextBelow(6)),
                           static_cast<std::uint32_t>(1 + rng.NextBelow(3))});
      }
      terms.push_back({Monomial::FromFactors(std::move(factors)),
                       rng.NextDoubleInRange(-10, 10)});
    }
    set.Add("p" + std::to_string(p), Polynomial::FromTerms(std::move(terms)));
  }

  EvalProgram program(set);
  EXPECT_EQ(program.NumPolys(), set.size());
  EXPECT_EQ(program.NumTerms(), set.TotalMonomials());

  Valuation valuation(pool);
  for (VarId v = 0; v < pool.size(); ++v) {
    valuation.Set(v, rng.NextDoubleInRange(0.5, 2.0));
  }
  std::vector<double> compiled;
  program.Eval(valuation, &compiled);
  ASSERT_EQ(compiled.size(), set.size());
  for (std::size_t p = 0; p < set.size(); ++p) {
    EXPECT_NEAR(compiled[p], set.poly(p).Eval(valuation), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalProgramTest,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(EvalProgramEdge, EmptySetAndEmptyPoly) {
  PolySet set;
  set.Add("zero", Polynomial());
  EvalProgram program(set);
  Valuation valuation(std::size_t{0});
  std::vector<double> out;
  program.Eval(valuation, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(EvalProgramEdge, ConstantPolynomial) {
  VarPool pool;
  PolySet set;
  set.Add("c", Polynomial::Constant(7.5));
  EvalProgram program(set);
  std::vector<double> out;
  program.Eval(Valuation(pool), &out);
  EXPECT_DOUBLE_EQ(out[0], 7.5);
}

}  // namespace
}  // namespace cobra::prov
