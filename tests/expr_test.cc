// Tests for the scalar expression AST, binding and evaluation.

#include "rel/expr.h"

#include <gtest/gtest.h>

namespace cobra::rel {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprTest()
      : table_(Schema("T", {{"A", Type::kInt64},
                            {"B", Type::kDouble},
                            {"S", Type::kString}})) {
    table_.AppendRow({Value(std::int64_t{4}), Value(2.5), Value("hi")});
    table_.AppendRow({Value(std::int64_t{-1}), Value(0.0), Value("yo")});
  }

  Value Eval(const ExprPtr& e, std::size_t row = 0) {
    return BoundExpr::Bind(e, table_.schema()).ValueOrDie().Eval(table_, row);
  }

  Table table_;
};

TEST_F(ExprTest, ColumnAndLiteral) {
  EXPECT_EQ(Eval(Expr::Column("A")).AsInt64(), 4);
  EXPECT_DOUBLE_EQ(Eval(Expr::Column("T.B")).AsDouble(), 2.5);
  EXPECT_EQ(Eval(Expr::Str("s")).AsString(), "s");
  EXPECT_EQ(Eval(Expr::Int(9)).AsInt64(), 9);
}

TEST_F(ExprTest, IntegerArithmeticStaysInt) {
  Value v = Eval(Expr::Add(Expr::Column("A"), Expr::Int(2)));
  EXPECT_EQ(v.type(), Type::kInt64);
  EXPECT_EQ(v.AsInt64(), 6);
  EXPECT_EQ(Eval(Expr::Mul(Expr::Column("A"), Expr::Int(3))).AsInt64(), 12);
  EXPECT_EQ(Eval(Expr::Sub(Expr::Int(1), Expr::Column("A"))).AsInt64(), -3);
}

TEST_F(ExprTest, MixedArithmeticPromotesToDouble) {
  Value v = Eval(Expr::Mul(Expr::Column("A"), Expr::Column("B")));
  EXPECT_EQ(v.type(), Type::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 10.0);
}

TEST_F(ExprTest, DivisionIsAlwaysDouble) {
  Value v = Eval(Expr::Div(Expr::Int(7), Expr::Int(2)));
  EXPECT_EQ(v.type(), Type::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
}

TEST_F(ExprTest, Negation) {
  EXPECT_EQ(Eval(Expr::Unary(ExprOp::kNeg, Expr::Column("A"))).AsInt64(), -4);
  EXPECT_DOUBLE_EQ(
      Eval(Expr::Unary(ExprOp::kNeg, Expr::Column("B"))).AsDouble(), -2.5);
}

TEST_F(ExprTest, Comparisons) {
  EXPECT_EQ(Eval(Expr::Lt(Expr::Column("A"), Expr::Int(5))).AsInt64(), 1);
  EXPECT_EQ(Eval(Expr::Ge(Expr::Column("A"), Expr::Int(5))).AsInt64(), 0);
  EXPECT_EQ(Eval(Expr::Eq(Expr::Column("S"), Expr::Str("hi"))).AsInt64(), 1);
  EXPECT_EQ(Eval(Expr::Ne(Expr::Column("S"), Expr::Str("hi"))).AsInt64(), 0);
  EXPECT_EQ(Eval(Expr::Le(Expr::Int(3), Expr::Int(3))).AsInt64(), 1);
  EXPECT_EQ(Eval(Expr::Gt(Expr::Column("B"), Expr::Int(2))).AsInt64(), 1);
}

TEST_F(ExprTest, BooleanConnectives) {
  ExprPtr t = Expr::Int(1), f = Expr::Int(0);
  EXPECT_EQ(Eval(Expr::And(t, f)).AsInt64(), 0);
  EXPECT_EQ(Eval(Expr::Or(t, f)).AsInt64(), 1);
  EXPECT_EQ(Eval(Expr::Not(f)).AsInt64(), 1);
  EXPECT_EQ(Eval(Expr::Not(t)).AsInt64(), 0);
}

TEST_F(ExprTest, EvalBoolOnSecondRow) {
  BoundExpr b = BoundExpr::Bind(Expr::Gt(Expr::Column("A"), Expr::Int(0)),
                                table_.schema())
                    .ValueOrDie();
  EXPECT_TRUE(b.EvalBool(table_, 0));
  EXPECT_FALSE(b.EvalBool(table_, 1));
}

TEST_F(ExprTest, BindRejectsTypeErrors) {
  Schema s = table_.schema();
  EXPECT_FALSE(BoundExpr::Bind(Expr::Add(Expr::Column("S"), Expr::Int(1)), s).ok());
  EXPECT_FALSE(BoundExpr::Bind(Expr::Eq(Expr::Column("S"), Expr::Int(1)), s).ok());
  EXPECT_FALSE(
      BoundExpr::Bind(Expr::And(Expr::Column("S"), Expr::Int(1)), s).ok());
  EXPECT_FALSE(BoundExpr::Bind(Expr::Column("Missing"), s).ok());
  EXPECT_FALSE(BoundExpr::Bind(nullptr, s).ok());
}

TEST_F(ExprTest, ResultTypePropagation) {
  Schema s = table_.schema();
  EXPECT_EQ(BoundExpr::Bind(Expr::Column("A"), s).ValueOrDie().result_type(),
            Type::kInt64);
  EXPECT_EQ(BoundExpr::Bind(Expr::Mul(Expr::Column("A"), Expr::Column("B")), s)
                .ValueOrDie()
                .result_type(),
            Type::kDouble);
  EXPECT_EQ(BoundExpr::Bind(Expr::Eq(Expr::Column("A"), Expr::Int(1)), s)
                .ValueOrDie()
                .result_type(),
            Type::kInt64);
}

TEST_F(ExprTest, CollectColumns) {
  ExprPtr e = Expr::Add(Expr::Mul(Expr::Column("A"), Expr::Column("B")),
                        Expr::Column("A"));
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"A", "B", "A"}));
}

TEST_F(ExprTest, ToStringReadable) {
  ExprPtr e = Expr::And(Expr::Eq(Expr::Column("A"), Expr::Int(1)),
                        Expr::Lt(Expr::Column("B"), Expr::Double(2.5)));
  EXPECT_EQ(e->ToString(), "((A = 1) AND (B < 2.5))");
  EXPECT_EQ(Expr::Str("x")->ToString(), "'x'");
}

}  // namespace
}  // namespace cobra::rel
