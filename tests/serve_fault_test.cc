// Fault-injection integration test for the serving daemon stack
// (serve/fault.h): the CMake target recompiles the serve sources with
// COBRA_FAULT_INJECTION, so the probes at the failure seams are live in
// this binary (and only this one — ServerBuildHasFaultInjection() guards
// against running the suite against a probe-free link).
//
// The robustness contract under test, end to end:
//   - transient faults (failed reads, slow loads, torn writes) are retried
//     or re-polled; the old version keeps serving and nothing quarantines;
//   - permanent corruption quarantines exactly once, with the serving
//     session untouched;
//   - admission overflow sheds with a retry hint instead of buffering or
//     crashing;
//   - a client burst riding across a hot swap completes every accepted
//     request bit-identically to a direct AssignBatch against exactly one
//     published version.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/compiled_session.h"
#include "core/io.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/example_db.h"
#include "serve/fault.h"
#include "serve/server.h"
#include "serve/snapshot_watcher.h"
#include "serve/wire.h"
#include "util/csv.h"
#include "util/status.h"

namespace cobra::serve {
namespace {

using core::CompiledSession;
using core::ScenarioSet;
using core::Session;

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

std::shared_ptr<const CompiledSession> ExampleSnapshot(Session* session) {
  session->LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
  session->SetTreeText(data::kFigure2TreeText).CheckOK();
  session->SetBound(6);
  session->Compress().ValueOrDie();
  return session->Snapshot().ValueOrDie();
}

ScenarioSet ExampleScenarios() {
  ScenarioSet scenarios;
  scenarios.Add("slump").ValueOrDie().Set("Business", 0.8);
  scenarios.Add("mixed").ValueOrDie().Set("Business", 1.25).Set("Special", 0.9);
  return scenarios;
}

std::string MakeDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

class ServeFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!ServerBuildHasFaultInjection()) {
      GTEST_SKIP() << "serve sources linked without COBRA_FAULT_INJECTION";
    }
    ResetFaults();
  }
  void TearDown() override { ResetFaults(); }
};

TEST_F(ServeFaultTest, InjectedReadFaultsRetryThenSucceed) {
  const std::string dir = MakeDir("fault_read_retry");
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  const std::string path = dir + "/v001.snap";
  ASSERT_TRUE(core::SaveSnapshot(*origin, path).ok());

  ArmFault(FaultPoint::kSnapshotRead, /*count=*/2);
  std::vector<int> sleeps;
  LoadOutcome outcome = LoadSnapshotWithRetry(
      path, RetryPolicy{}, /*quarantine_on_permanent=*/true,
      [&sleeps](int ms) { sleeps.push_back(ms); });
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.attempts, 3);  // 2 injected failures + 1 success
  EXPECT_EQ(FaultFireCount(FaultPoint::kSnapshotRead), 2);
  EXPECT_EQ(sleeps.size(), 2u);
  EXPECT_FALSE(outcome.quarantined);  // transient: never condemned
  EXPECT_TRUE(util::ReadFile(path).ok());
}

TEST_F(ServeFaultTest, ReadFaultsBeyondRetryBudgetGiveUpTransiently) {
  const std::string dir = MakeDir("fault_read_giveup");
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  ASSERT_TRUE(core::SaveSnapshot(*origin, dir + "/v001.snap").ok());

  RetryPolicy policy;
  policy.max_attempts = 3;
  ArmFault(FaultPoint::kSnapshotRead, /*count=*/100);
  LoadOutcome outcome =
      LoadSnapshotWithRetry(dir + "/v001.snap", policy,
                            /*quarantine_on_permanent=*/true, [](int) {});
  ASSERT_FALSE(outcome.status.ok());
  EXPECT_TRUE(util::IsRetryable(outcome.status));
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_FALSE(outcome.quarantined);
  // The artifact is fine — a later poll (faults exhausted/cleared) loads it.
  ResetFaults();
  LoadOutcome retry = LoadSnapshotWithRetry(
      dir + "/v001.snap", policy, /*quarantine_on_permanent=*/true, [](int) {});
  EXPECT_TRUE(retry.status.ok());
}

TEST_F(ServeFaultTest, TornWriteIsRetriedNotQuarantinedThenSwapsWhenComplete) {
  const std::string dir = MakeDir("fault_torn_write");
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  ASSERT_TRUE(core::SaveSnapshot(*origin, dir + "/v001.snap").ok());

  std::vector<std::string> swapped;
  SnapshotWatcher::Options options;
  options.dir = dir;
  options.retry.max_attempts = 2;
  options.retry.backoff_initial_ms = 1;
  SnapshotWatcher watcher(
      options,
      [&swapped](std::shared_ptr<const CompiledSession>,
                 const std::string& name) { swapped.push_back(name); },
      nullptr);
  ASSERT_TRUE(watcher.PollOnce().ok());
  ASSERT_EQ(swapped.size(), 1u);

  // A torn write: the full serialized bytes, truncated mid-payload. This is
  // the external fault the harness produces without an in-process hook.
  const std::string full_bytes =
      core::SerializeSnapshot(core::MakeSnapshot(*origin));
  ASSERT_TRUE(util::WriteFile(dir + "/v002.snap",
                              full_bytes.substr(0, full_bytes.size() / 2))
                  .ok());
  util::Status poll = watcher.PollOnce();
  ASSERT_FALSE(poll.ok());
  EXPECT_TRUE(util::IsRetryable(poll));          // torn != corrupt
  EXPECT_EQ(watcher.stats().quarantines, 0u);    // never condemned
  EXPECT_EQ(watcher.current_name(), "v001.snap");
  EXPECT_TRUE(util::ReadFile(dir + "/v002.snap").ok());  // left in place

  // The publisher finishes the write: the next poll swaps.
  ASSERT_TRUE(util::WriteFile(dir + "/v002.snap", full_bytes).ok());
  ASSERT_TRUE(watcher.PollOnce().ok());
  ASSERT_EQ(swapped.size(), 2u);
  EXPECT_EQ(swapped[1], "v002.snap");
}

TEST_F(ServeFaultTest, SlowLoadStallsTheWatcherNotTheServingPath) {
  const std::string dir = MakeDir("fault_slow_load");
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  ASSERT_TRUE(core::SaveSnapshot(*origin, dir + "/v001.snap").ok());

  ServerOptions server_options;
  server_options.num_workers = 2;
  CobraServer server(server_options);
  server.set_log([](const std::string&) {});
  ASSERT_TRUE(server.Start().ok());
  server.Swap(origin, "v000.snap");

  SnapshotWatcher::Options watcher_options;
  watcher_options.dir = dir;
  SnapshotWatcher watcher(
      watcher_options,
      [&server](std::shared_ptr<const CompiledSession> loaded,
                const std::string& name) {
        server.Swap(std::move(loaded), name);
      },
      nullptr);

  // The watcher's load of v001 stalls 150ms. Requests must keep being
  // answered from the already-published version for the whole window.
  ArmFault(FaultPoint::kSlowLoad, /*count=*/1, /*delay_ms=*/150);
  std::thread poller([&watcher] { watcher.PollOnce(); });

  util::Result<Client> client =
      Client::Connect("127.0.0.1", server.port(), 30000);
  ASSERT_TRUE(client.ok());
  const auto window_end =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
  int answered = 0;
  while (std::chrono::steady_clock::now() < window_end) {
    WireRequest request;
    request.type = MsgType::kAssignBatch;
    request.request_id = static_cast<std::uint64_t>(answered) + 1;
    request.deadline_ms = 30000;
    request.scenarios = ExampleScenarios();
    util::Result<WireResponse> response = client->Call(request);
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->code, WireCode::kOk);
    ++answered;
  }
  poller.join();
  EXPECT_GT(answered, 0);
  EXPECT_EQ(FaultFireCount(FaultPoint::kSlowLoad), 1);
  EXPECT_EQ(server.snapshot_name(), "v001.snap");  // the swap did land
  server.Stop();
}

TEST_F(ServeFaultTest, QueueOverflowShedsWithRetryHintAndRecovers) {
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  CobraServer server(ServerOptions{});
  server.set_log([](const std::string&) {});
  ASSERT_TRUE(server.Start().ok());
  server.Swap(origin, "v1");

  util::Result<Client> client =
      Client::Connect("127.0.0.1", server.port(), 30000);
  ASSERT_TRUE(client.ok());

  // The next two admissions see a full queue (injected — actually filling
  // a 128-deep queue would make the test a load test).
  ArmFault(FaultPoint::kQueueOverflow, /*count=*/2);
  for (int i = 0; i < 2; ++i) {
    WireRequest request;
    request.type = MsgType::kAssignBatch;
    request.request_id = static_cast<std::uint64_t>(i) + 1;
    request.scenarios = ExampleScenarios();
    util::Result<WireResponse> response = client->Call(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, WireCode::kUnavailable);
    EXPECT_GT(response->retry_after_ms, 0u);
  }
  EXPECT_EQ(FaultFireCount(FaultPoint::kQueueOverflow), 2);
  EXPECT_EQ(server.stats().shed, 2u);

  // The shed was load control, not a wedge: the next request serves.
  WireRequest request;
  request.type = MsgType::kAssignBatch;
  request.request_id = 99;
  request.deadline_ms = 30000;
  request.scenarios = ExampleScenarios();
  util::Result<WireResponse> response = client->Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->code, WireCode::kOk);
  server.Stop();
}

TEST_F(ServeFaultTest, MidSwapBurstCompletesEveryAcceptedRequestCoherently) {
  const std::string dir = MakeDir("fault_mid_swap_burst");
  Session session;
  std::shared_ptr<const CompiledSession> version_a =
      ExampleSnapshot(&session);
  prov::Valuation meta = version_a->default_meta_valuation();
  for (const core::MetaVar& var : version_a->meta_vars()) {
    meta.Set(var.var, 1.5);
  }
  std::shared_ptr<const CompiledSession> version_b =
      version_a->WithDefaultMetaValuation(meta);

  const ScenarioSet scenarios = ExampleScenarios();
  auto direct = [&scenarios](const CompiledSession& snapshot) {
    std::vector<double> flat;
    core::BatchAssignReport report =
        snapshot.AssignBatch(scenarios).ValueOrDie();
    for (const core::AssignReport& scenario : report.reports) {
      for (const core::ResultDelta::Row& row : scenario.delta.rows) {
        flat.push_back(row.full);
        flat.push_back(row.compressed);
      }
    }
    return flat;
  };
  const std::vector<double> expected_a = direct(*version_a);
  const std::vector<double> expected_b = direct(*version_b);

  ServerOptions options;
  options.num_workers = 4;
  options.queue_capacity = 4096;
  CobraServer server(options);
  server.set_log([](const std::string&) {});
  ASSERT_TRUE(server.Start().ok());
  server.Swap(version_a, "vA");  // version 1: odd versions serve A

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 15;
  std::atomic<int> failed{0};
  std::atomic<int> incoherent{0};
  std::vector<std::thread> burst;
  for (int t = 0; t < kThreads; ++t) {
    burst.emplace_back([&, t] {
      util::Result<Client> client =
          Client::Connect("127.0.0.1", server.port(), 30000);
      if (!client.ok()) {
        failed.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRequestsPerThread; ++r) {
        WireRequest request;
        request.type = MsgType::kAssignBatch;
        request.request_id = static_cast<std::uint64_t>(t * 100 + r);
        request.deadline_ms = 30000;
        request.scenarios = scenarios;
        util::Result<WireResponse> response = client->Call(request);
        if (!response.ok() || response->code != WireCode::kOk) {
          failed.fetch_add(1);
          continue;
        }
        const std::vector<double>& expected =
            (response->snapshot_version % 2 == 1) ? expected_a : expected_b;
        std::vector<double> flat;
        for (std::size_t s = 0; s < response->num_scenarios(); ++s) {
          for (std::size_t g = 0; g < response->num_groups(); ++g) {
            flat.push_back(response->full_value(s, g));
            flat.push_back(response->compressed_value(s, g));
          }
        }
        bool coherent = flat.size() == expected.size();
        for (std::size_t i = 0; coherent && i < flat.size(); ++i) {
          coherent = SameBits(flat[i], expected[i]);
        }
        if (!coherent) incoherent.fetch_add(1);
      }
    });
  }

  // The swapper keeps flipping versions under the burst.
  std::atomic<bool> swapping{true};
  std::thread swapper([&] {
    bool serve_b = true;
    while (swapping.load()) {
      server.Swap(serve_b ? version_b : version_a, serve_b ? "vB" : "vA");
      serve_b = !serve_b;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (std::thread& thread : burst) thread.join();
  swapping.store(false);
  swapper.join();
  server.Stop();

  // The acceptance contract: zero failed in-flight requests, zero
  // incoherent (mixed-version or wrong-value) responses.
  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(incoherent.load(), 0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, stats.completed);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(ServeFaultTest, CorruptSnapshotQuarantinesExactlyOnceUnderTraffic) {
  const std::string dir = MakeDir("fault_corrupt_under_traffic");
  Session session;
  std::shared_ptr<const CompiledSession> origin = ExampleSnapshot(&session);
  ASSERT_TRUE(core::SaveSnapshot(*origin, dir + "/v001.snap").ok());

  CobraServer server(ServerOptions{});
  server.set_log([](const std::string&) {});
  ASSERT_TRUE(server.Start().ok());

  std::string log_text;
  std::mutex log_mu;
  SnapshotWatcher::Options watcher_options;
  watcher_options.dir = dir;
  watcher_options.retry.max_attempts = 1;
  SnapshotWatcher watcher(
      watcher_options,
      [&server](std::shared_ptr<const CompiledSession> loaded,
                const std::string& name) {
        server.Swap(std::move(loaded), name);
      },
      [&](const std::string& line) {
        std::lock_guard<std::mutex> lock(log_mu);
        log_text += line + "\n";
      });
  ASSERT_TRUE(watcher.PollOnce().ok());
  ASSERT_EQ(server.snapshot_name(), "v001.snap");

  // Corrupt v002 appears: flip bytes inside the checksummed payload.
  std::string bad = core::SerializeSnapshot(core::MakeSnapshot(*origin));
  for (std::size_t i = bad.size() / 2; i < bad.size() / 2 + 8; ++i) {
    bad[i] = static_cast<char>(~bad[i]);
  }
  ASSERT_TRUE(util::WriteFile(dir + "/v002.snap", bad).ok());

  util::Result<Client> client =
      Client::Connect("127.0.0.1", server.port(), 30000);
  ASSERT_TRUE(client.ok());
  for (int poll = 0; poll < 3; ++poll) {
    watcher.PollOnce();  // first: quarantine; rest: steady state
    WireRequest request;
    request.type = MsgType::kAssignBatch;
    request.request_id = static_cast<std::uint64_t>(poll) + 1;
    request.deadline_ms = 30000;
    request.scenarios = ExampleScenarios();
    util::Result<WireResponse> response = client->Call(request);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->code, WireCode::kOk);
    EXPECT_EQ(response->snapshot_version, 1u);  // never swapped off v001
  }
  EXPECT_EQ(watcher.stats().quarantines, 1u);  // exactly once, no loop
  EXPECT_EQ(watcher.current_name(), "v001.snap");
  EXPECT_TRUE(std::filesystem::exists(dir + "/v002.snap.rejected"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/v002.snap"));
  {
    std::lock_guard<std::mutex> lock(log_mu);
    EXPECT_NE(log_text.find("checksum mismatch"), std::string::npos);
  }
  server.Stop();
}

}  // namespace
}  // namespace cobra::serve
