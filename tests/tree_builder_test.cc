// Tests for BuildTreeFromEdges / BuildTreeFromCsv — ontology import.

#include "core/tree_builder.h"

#include <gtest/gtest.h>

#include "core/cut.h"

namespace cobra::core {
namespace {

TEST(TreeBuilderTest, BuildsFigure2FromEdges) {
  prov::VarPool pool;
  std::vector<HierarchyEdge> edges = {
      {"Plans", "Business"}, {"Business", "SB"},    {"SB", "b1"},
      {"SB", "b2"},          {"Business", "e"},     {"Plans", "Special"},
      {"Special", "F"},      {"F", "f1"},           {"F", "f2"},
      {"Special", "Y"},      {"Y", "y1"},           {"Y", "y2"},
      {"Y", "y3"},           {"Special", "v"},      {"Plans", "Standard"},
      {"Standard", "p1"},    {"Standard", "p2"}};
  AbstractionTree tree = BuildTreeFromEdges(edges, &pool).ValueOrDie();
  EXPECT_EQ(tree.size(), 18u);
  EXPECT_EQ(tree.Leaves().size(), 11u);
  EXPECT_EQ(tree.CountCuts(), 31u);
  EXPECT_EQ(tree.node(tree.root()).name, "Plans");
  // Children keep edge order: Business before Special before Standard.
  const auto& kids = tree.node(tree.root()).children;
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(tree.node(kids[0]).name, "Business");
  EXPECT_EQ(tree.node(kids[2]).name, "Standard");
  // Leaves interned as variables.
  EXPECT_TRUE(pool.Contains("b1"));
  EXPECT_FALSE(pool.Contains("Business"));
}

TEST(TreeBuilderTest, RejectsEmptyAndMalformedEdgeLists) {
  prov::VarPool pool;
  EXPECT_FALSE(BuildTreeFromEdges({}, &pool).ok());
  EXPECT_FALSE(BuildTreeFromEdges({{"a", "a"}}, &pool).ok());
  EXPECT_FALSE(BuildTreeFromEdges({{"", "x"}}, &pool).ok());
}

TEST(TreeBuilderTest, RejectsTwoParents) {
  prov::VarPool pool;
  EXPECT_FALSE(
      BuildTreeFromEdges({{"r", "a"}, {"r", "b"}, {"a", "x"}, {"b", "x"}},
                         &pool)
          .ok());
}

TEST(TreeBuilderTest, RejectsTwoRoots) {
  prov::VarPool pool;
  EXPECT_FALSE(BuildTreeFromEdges({{"r1", "a"}, {"r2", "b"}}, &pool).ok());
}

TEST(TreeBuilderTest, RejectsCycles) {
  prov::VarPool pool;
  // Pure cycle: no root at all.
  EXPECT_FALSE(
      BuildTreeFromEdges({{"a", "b"}, {"b", "c"}, {"c", "a"}}, &pool).ok());
  // Cycle hanging off a valid root: unreachable two-parent violation or
  // disconnected component.
  EXPECT_FALSE(BuildTreeFromEdges(
                   {{"r", "a"}, {"x", "y"}, {"y", "x"}}, &pool)
                   .ok());
}

TEST(TreeBuilderTest, DuplicateEdgesAreIdempotent) {
  prov::VarPool pool;
  AbstractionTree tree =
      BuildTreeFromEdges({{"r", "a"}, {"r", "a"}, {"r", "b"}}, &pool)
          .ValueOrDie();
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(tree.node(tree.root()).children.size(), 2u);
}

TEST(TreeBuilderTest, CsvImport) {
  prov::VarPool pool;
  AbstractionTree tree =
      BuildTreeFromCsv(
          "parent,child\nPlans,Business\nBusiness,b1\nBusiness,b2\n"
          "Plans,Standard\nStandard,p1\n",
          &pool)
          .ValueOrDie();
  EXPECT_EQ(tree.Leaves().size(), 3u);
  EXPECT_TRUE(Cut::FromNames(tree, {"Business", "Standard"})
                  .ValueOrDie()
                  .Validate(tree)
                  .ok());
}

TEST(TreeBuilderTest, CsvRequiresParentChildHeader) {
  prov::VarPool pool;
  EXPECT_FALSE(BuildTreeFromCsv("a,b\nx,y\n", &pool).ok());
  EXPECT_FALSE(BuildTreeFromCsv("parent\nx\n", &pool).ok());
  // Case-insensitive header accepted; extra columns ignored.
  EXPECT_TRUE(
      BuildTreeFromCsv("Parent,Child,note\nr,x,hi\nr,y,yo\n", &pool).ok());
}

}  // namespace
}  // namespace cobra::core
