// cobra_shell — a batch command interpreter exposing the whole COBRA
// pipeline on user data, mirroring the demo system's workflow without the
// GUI. Commands come from a script file (or stdin with '-'):
//
//   load <table> <file.csv>          register a CSV file as a table
//   instrument <table> <col> <pfx>   tag rows with variable <pfx><value>
//   sql <SELECT ...>                 run a query; keeps the last grouped
//                                    result as the session provenance
//   tree <file>                      install an abstraction tree (indented
//                                    text format)
//   bound <n>                        set the compressed-size bound
//   compress [optimal|greedy|level]  compute the abstraction
//   set <var> <value>                assign a (meta-)variable
//   assign                           evaluate the scenario, print deltas
//   show polys|compressed|tree|meta  inspect session state
//   save <file>                      write the compressed package (the
//                                    artifact shipped to analysts)
//   package <file>                   load a compressed package and evaluate
//                                    it under its defaults (the analyst-side
//                                    path; sizes are checked, not assumed)
//   snapshot save <file>             write the compiled serving snapshot
//                                    (programs + pool + defaults; binary)
//   snapshot load <file>             load a snapshot as a replica would and
//                                    evaluate it under its defaults — zero
//                                    recompilation, bit-identical results
//   batch [n]                        run n synthetic what-if scenarios (16
//                                    by default) through the snapshot's
//                                    batched sweep; repeating the command
//                                    replays the cached BatchPlan
//   sweep [n] [k]                    stream n seeded Monte-Carlo scenarios
//                                    (4096 by default) over the cut's
//                                    meta-variables through AssignStream,
//                                    keeping the top k (8) by
//                                    compressed-side movement — nothing is
//                                    materialized
//   grid [n] [bases] [file]          run n synthetic scenarios under
//                                    `bases` per-user base valuations in one
//                                    AssignGrid sweep — the shared PlanCore
//                                    is planned once, each base binds only a
//                                    cheap overlay; with a file the snapshot
//                                    is loaded from disk (the replica path)
//   plan                             show the snapshot's cached-plan table
//                                    (fingerprint, engine, lanes, tiles,
//                                    per-entry overlay count) and the cache
//                                    hit/core-hit/miss counters
//   verify                           run the static verifier over the live
//                                    compiled session: programs, the
//                                    snapshot round-trip, and every cached
//                                    plan; prints the finding table
//   # ...                            comment
//
// Example session (using the bundled telephony example): see
// examples/shell_demo.cobra in the repository.

#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/io.h"
#include "core/session.h"
#include "prov/eval_program.h"
#include "prov/valuation.h"
#include "prov/variable.h"
#include "data/example_db.h"
#include "rel/csv_loader.h"
#include "rel/database.h"
#include "rel/instrument.h"
#include "rel/sql/planner.h"
#include "util/csv.h"
#include "util/str.h"
#include "verify/verify.h"

namespace {

using namespace cobra;

class Shell {
 public:
  Shell() : session_(db_.var_pool()) {}

  /// Executes one command line; returns false only on hard errors.
  bool Execute(const std::string& raw_line) {
    std::string_view line = util::Trim(raw_line);
    if (line.empty() || line[0] == '#') return true;
    std::istringstream in{std::string(line)};
    std::string command;
    in >> command;
    command = util::ToLower(command);

    if (command == "load") return Load(in);
    if (command == "instrument") return Instrument(in);
    if (command == "sql") return Sql(std::string(line).substr(4));
    if (command == "tree") return Tree(in);
    if (command == "bound") return Bound(in);
    if (command == "compress") return CompressCmd(in);
    if (command == "set") return Set(in);
    if (command == "assign") return Assign();
    if (command == "show") return Show(in);
    if (command == "save") return Save(in);
    if (command == "package") return Package(in);
    if (command == "snapshot") return Snapshot(in);
    if (command == "batch") return Batch(in);
    if (command == "sweep") return Sweep(in);
    if (command == "grid") return Grid(in);
    if (command == "plan") return Plan();
    if (command == "verify") return Verify();
    std::printf("error: unknown command '%s'\n", command.c_str());
    return true;
  }

 private:
  static bool Report(const util::Status& status) {
    if (!status.ok()) std::printf("error: %s\n", status.ToString().c_str());
    return true;
  }

  bool Load(std::istringstream& in) {
    std::string name, path;
    in >> name >> path;
    util::Status status = rel::LoadCsvTable(&db_, name, path);
    if (status.ok()) {
      std::printf("loaded %s (%zu rows)\n", name.c_str(),
                  db_.GetTable(name).ValueOrDie()->NumRows());
    }
    return Report(status);
  }

  bool Instrument(std::istringstream& in) {
    std::string table, column, prefix;
    in >> table >> column >> prefix;
    return Report(
        rel::InstrumentByColumns(&db_, table, {{column, prefix}}));
  }

  bool Sql(const std::string& text) {
    util::Result<rel::sql::QueryResult> result = rel::sql::RunSql(db_, text);
    if (!result.ok()) return Report(result.status());
    prov::Valuation neutral(*db_.var_pool());
    rel::Table answer = result->Evaluate(neutral);
    std::printf("%s", answer.ToString(15).c_str());
    if (result->IsGrouped()) {
      session_.LoadPolynomials(result->Provenance());
      std::printf("(provenance kept: %zu polynomials, %zu monomials)\n",
                  session_.full().size(), session_.full().TotalMonomials());
    }
    return true;
  }

  bool Tree(std::istringstream& in) {
    std::string path;
    in >> path;
    util::Result<std::string> text = util::ReadFile(path);
    if (!text.ok()) return Report(text.status());
    return Report(session_.SetTreeText(*text));
  }

  bool Bound(std::istringstream& in) {
    std::size_t bound = 0;
    in >> bound;
    session_.SetBound(bound);
    std::printf("bound = %zu\n", bound);
    return true;
  }

  bool CompressCmd(std::istringstream& in) {
    std::string algorithm_name = "optimal";
    in >> algorithm_name;
    core::Algorithm algorithm = core::Algorithm::kOptimalDp;
    if (algorithm_name == "greedy") algorithm = core::Algorithm::kGreedy;
    if (algorithm_name == "level") algorithm = core::Algorithm::kLevelCut;
    util::Result<core::CompressionReport> report =
        session_.Compress(algorithm);
    if (!report.ok()) return Report(report.status());
    std::printf("%s", report->ToString().c_str());
    return true;
  }

  bool Set(std::istringstream& in) {
    std::string name;
    double value = 1.0;
    in >> name >> value;
    return Report(session_.SetMetaValue(name, value));
  }

  bool Assign() {
    util::Result<core::AssignReport> report = session_.Assign();
    if (!report.ok()) return Report(report.status());
    std::printf("%s", report->ToString(15).c_str());
    return true;
  }

  bool Show(std::istringstream& in) {
    std::string what;
    in >> what;
    if (what == "polys") {
      std::printf("%s", session_.full().ToString(session_.pool()).c_str());
    } else if (what == "compressed" && session_.IsCompressed()) {
      std::printf("%s",
                  session_.compressed().ToString(session_.pool()).c_str());
    } else if (what == "meta" && session_.IsCompressed()) {
      for (const core::MetaVar& mv : session_.meta_vars()) {
        std::printf("%-12s = %-8g replaces:", mv.name.c_str(),
                    session_.meta_valuation().Get(mv.var));
        for (prov::VarId leaf : mv.leaves) {
          std::printf(" %s", session_.pool().Name(leaf).c_str());
        }
        std::printf("\n");
      }
    } else {
      std::printf("error: nothing to show for '%s'\n", what.c_str());
    }
    return true;
  }

  bool Save(std::istringstream& in) {
    std::string path;
    in >> path;
    if (!session_.IsCompressed()) {
      std::printf("error: compress before saving a package\n");
      return true;
    }
    prov::Valuation base(session_.pool().size());
    core::CompressedPackage package =
        core::MakePackage(session_.abstraction(), base, session_.pool());
    util::Status status =
        core::SavePackage(package, session_.pool(), path);
    if (status.ok()) std::printf("package written to %s\n", path.c_str());
    return Report(status);
  }

  bool Package(std::istringstream& in) {
    std::string path;
    in >> path;
    // The analyst side: a package is external input, so it gets its own
    // pool and every evaluation goes through the checked entry points —
    // a malformed file must produce an error line, not kill the shell.
    prov::VarPool pool;
    util::Result<core::CompressedPackage> package =
        core::LoadPackage(path, &pool);
    if (!package.ok()) return Report(package.status());

    prov::Valuation valuation(pool);
    for (const auto& [name, value] : package->defaults) {
      util::Status status = valuation.SetByName(pool, name, value);
      if (!status.ok()) return Report(status);
    }
    prov::EvalProgram program(package->polynomials);
    std::vector<double> answers;
    util::Status status = program.EvalChecked(valuation, &answers);
    if (!status.ok()) return Report(status);

    std::printf("package %s: %zu polynomials, %zu meta groups\n",
                path.c_str(), package->polynomials.size(),
                package->meta_groups.size());
    for (std::size_t i = 0; i < answers.size(); ++i) {
      std::printf("  %-16s = %.6g\n",
                  package->polynomials.label(i).c_str(), answers[i]);
    }
    return true;
  }

  bool Snapshot(std::istringstream& in) {
    std::string action, path;
    in >> action >> path;
    if (action == "save") {
      if (!session_.IsCompressed()) {
        std::printf("error: compress before saving a snapshot\n");
        return true;
      }
      util::Result<std::shared_ptr<const core::CompiledSession>> snapshot =
          session_.Snapshot();
      if (!snapshot.ok()) return Report(snapshot.status());
      util::Status status = core::SaveSnapshot(**snapshot, path);
      if (status.ok()) {
        std::printf("snapshot written to %s (pool %zu, %zu -> %zu monomials)\n",
                    path.c_str(), (*snapshot)->pool_size(),
                    (*snapshot)->full_size(), (*snapshot)->compressed_size());
      }
      return Report(status);
    }
    if (action == "load") {
      // The replica side: reconstruct the serving session from the file
      // alone (no tree, no source polynomials, no recompilation) and
      // evaluate it under its shipped defaults.
      util::Result<std::shared_ptr<const core::CompiledSession>> snapshot =
          core::LoadSnapshot(path);
      if (!snapshot.ok()) return Report(snapshot.status());
      std::printf(
          "snapshot %s: %zu groups, %zu meta-vars, pool %zu, "
          "%zu -> %zu monomials\n",
          path.c_str(), (*snapshot)->labels().size(),
          (*snapshot)->meta_vars().size(), (*snapshot)->pool_size(),
          (*snapshot)->full_size(), (*snapshot)->compressed_size());
      util::Result<core::AssignReport> report = (*snapshot)->Assign(1);
      if (!report.ok()) return Report(report.status());
      std::printf("%s", report->ToString(15).c_str());
      return true;
    }
    std::printf("error: usage: snapshot save|load <file>\n");
    return true;
  }

  bool Batch(std::istringstream& in) {
    std::size_t n = 16;
    in >> n;
    if (n == 0) n = 16;
    if (!session_.IsCompressed()) {
      std::printf("error: compress before running a batch\n");
      return true;
    }
    const std::vector<core::MetaVar>& meta = session_.meta_vars();
    if (meta.empty()) {
      std::printf("error: the cut has no meta-variables to perturb\n");
      return true;
    }
    // Deterministic synthetic scenarios over the meta-variables, so
    // repeating `batch <n>` replays the identical set and exercises the
    // plan cache (see `plan`).
    core::ScenarioSet scenarios;
    for (std::size_t i = 0; i < n; ++i) {
      auto s = scenarios.Add("whatif-" + std::to_string(i)).ValueOrDie();
      s.Set(meta[i % meta.size()].name,
            1.0 + 0.01 * static_cast<double>(i % 40 + 1));
    }
    util::Result<std::shared_ptr<const core::CompiledSession>> snapshot =
        session_.Snapshot();
    if (!snapshot.ok()) return Report(snapshot.status());
    util::Result<core::BatchAssignReport> batch =
        (*snapshot)->AssignBatch(scenarios);
    if (!batch.ok()) return Report(batch.status());
    std::printf("%s", batch->ToString(2, 3).c_str());
    return true;
  }

  bool Sweep(std::istringstream& in) {
    std::size_t n = 4096;
    std::size_t k = 8;
    in >> n >> k;
    if (n == 0) n = 4096;
    if (k == 0) k = 8;
    if (!session_.IsCompressed()) {
      std::printf("error: compress before running a sweep\n");
      return true;
    }
    const std::vector<core::MetaVar>& meta = session_.meta_vars();
    if (meta.empty()) {
      std::printf("error: the cut has no meta-variables to perturb\n");
      return true;
    }
    // A seeded Monte-Carlo source over every meta-variable: scenario i is a
    // pure function of (seed, i), so nothing is materialized — the space is
    // generated window by window inside AssignStream and only the k best
    // scenarios (by compressed-side movement) are kept.
    std::vector<core::RangeAxis> axes;
    axes.reserve(meta.size());
    for (const core::MetaVar& m : meta) {
      axes.push_back({m.name, 0.9, 1.1});
    }
    util::Result<std::shared_ptr<const core::SampledSource>> source =
        core::SampledSource::Create(std::move(axes), n, /*seed=*/42,
                                    "sweep");
    if (!source.ok()) return Report(source.status());
    util::Result<std::shared_ptr<const core::CompiledSession>> snapshot =
        session_.Snapshot();
    if (!snapshot.ok()) return Report(snapshot.status());
    core::StreamOptions options;
    options.query.kind = core::StreamQuery::Kind::kTopK;
    options.query.k = k;
    util::Result<core::SweepSummary> summary =
        (*snapshot)->AssignStream(**source, options);
    if (!summary.ok()) return Report(summary.status());
    std::printf("%s", summary->ToString(k).c_str());
    return true;
  }

  bool Grid(std::istringstream& in) {
    std::size_t n = 16;
    std::size_t num_bases = 4;
    std::string path;
    in >> n >> num_bases >> path;
    if (n == 0) n = 16;
    if (num_bases == 0) num_bases = 4;

    // With a path the snapshot comes off disk like a replica would serve
    // it; otherwise the live session's snapshot is used (requires a prior
    // `compress`).
    util::Result<std::shared_ptr<const core::CompiledSession>> snapshot =
        path.empty() ? session_.Snapshot() : core::LoadSnapshot(path);
    if (!snapshot.ok()) return Report(snapshot.status());
    const std::vector<core::MetaVar>& meta = (*snapshot)->meta_vars();
    if (meta.empty()) {
      std::printf("error: the cut has no meta-variables to perturb\n");
      return true;
    }
    core::ScenarioSet scenarios;
    for (std::size_t i = 0; i < n; ++i) {
      auto s = scenarios.Add("whatif-" + std::to_string(i)).ValueOrDie();
      s.Set(meta[i % meta.size()].name,
            1.0 + 0.01 * static_cast<double>(i % 40 + 1));
    }
    std::vector<prov::Valuation> bases;
    bases.reserve(num_bases);
    for (std::size_t b = 0; b < num_bases; ++b) {
      prov::Valuation base((*snapshot)->pool_size());
      base.Set(meta[b % meta.size()].var,
               1.0 + 0.05 * static_cast<double>(b % 10 + 1));
      bases.push_back(std::move(base));
    }
    util::Result<core::GridAssignReport> grid =
        (*snapshot)->AssignGrid(scenarios, bases);
    if (!grid.ok()) return Report(grid.status());
    std::printf("%s", grid->ToString().c_str());
    return true;
  }

  bool Plan() {
    util::Result<std::shared_ptr<const core::CompiledSession>> snapshot =
        session_.Snapshot();
    if (!snapshot.ok()) return Report(snapshot.status());
    std::vector<core::CompiledSession::CachedPlanInfo> plans =
        (*snapshot)->CachedPlans();
    core::CompiledSession::PlanCacheStats stats =
        (*snapshot)->plan_cache_stats();
    if (plans.empty()) {
      std::printf("plan cache empty — run `batch [n]` first\n");
      return true;
    }
    std::printf("%-32s %-12s %5s %6s %9s %9s\n", "fingerprint", "engine",
                "lanes", "tiles", "scenarios", "overlays");
    for (const core::CompiledSession::CachedPlanInfo& info : plans) {
      std::printf("%-32s %-12s %5zu %6zu %9zu %9zu\n",
                  info.fingerprint.c_str(), core::SweepName(info.engine),
                  info.lanes, info.tiles, info.scenarios, info.overlays);
    }
    std::printf("%zu cached plan(s) (%zu overlays), %llu hit(s), "
                "%llu core hit(s), %llu miss(es)\n",
                stats.entries, stats.overlays,
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.core_hits),
                static_cast<unsigned long long>(stats.misses));
    return true;
  }

  bool Verify() {
    if (!session_.IsCompressed()) {
      std::printf("error: compress before verifying\n");
      return true;
    }
    util::Result<std::shared_ptr<const core::CompiledSession>> snapshot =
        session_.Snapshot();
    if (!snapshot.ok()) return Report(snapshot.status());
    verify::VerifyReport report = verify::VerifySession(**snapshot);
    std::printf("%s", report.ToString().c_str());
    return true;
  }

  rel::Database db_;
  core::Session session_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <script.cobra | ->\n", argv[0]);
    return 2;
  }
  Shell shell;
  std::string path = argv[1];
  if (path == "-") {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!shell.Execute(line)) return 1;
    }
    return 0;
  }
  util::Result<std::string> script = util::ReadFile(path);
  if (!script.ok()) {
    std::fprintf(stderr, "%s\n", script.status().ToString().c_str());
    return 1;
  }
  for (const std::string& line : util::Split(*script, '\n')) {
    if (!shell.Execute(line)) return 1;
  }
  return 0;
}
