// Quickstart: the COBRA pipeline end to end on the paper's running example.
//
//   1. Build the Figure 1 telephony database and instrument its Plans
//      table with plan and month variables (Example 2).
//   2. Run the revenue query; each zip's revenue becomes a provenance
//      polynomial (P1, P2).
//   3. Install the Figure 2 abstraction tree, set a size bound, compress.
//   4. Assign a hypothetical scenario to the meta-variables and compare the
//      results computed from full vs compressed provenance.

#include <cstdio>

#include "core/session.h"
#include "data/example_db.h"
#include "rel/sql/planner.h"

int main() {
  using namespace cobra;

  // 1. Database + instrumentation.
  rel::Database db = data::BuildExampleDatabase();
  data::InstrumentExampleDb(&db).CheckOK();

  // 2. Provenance-aware query evaluation.
  util::Result<rel::sql::QueryResult> result =
      rel::sql::RunSql(db, data::kExampleRevenueQuery);
  result.status().CheckOK();
  prov::PolySet provenance = result->Provenance();

  std::printf("== Provenance polynomials (Example 2) ==\n%s\n",
              provenance.ToString(*db.var_pool()).c_str());

  // 3. Compression through a session sharing the database's variable pool.
  core::Session session(db.var_pool());
  session.LoadPolynomials(provenance);
  session.SetTreeText(data::kFigure2TreeText).CheckOK();
  session.SetBound(8);  // at most 8 monomials overall
  util::Result<core::CompressionReport> report = session.Compress();
  report.status().CheckOK();
  std::printf("== Compression ==\n%s\n", report->ToString().c_str());
  std::printf("compressed polynomials:\n%s\n",
              session.compressed().ToString(session.pool()).c_str());

  // 4. Hypothetical scenario: business plans +10%, March prices -20%.
  for (const core::MetaVar& mv : session.meta_vars()) {
    std::printf("meta-variable %-10s replaces %zu variable(s)\n",
                mv.name.c_str(), mv.leaves.size());
  }
  if (session.pool().Contains("Business")) {
    session.SetMetaValue("Business", 1.1).CheckOK();
  }
  session.SetMetaValue("m3", 0.8).CheckOK();
  util::Result<core::AssignReport> assign = session.Assign();
  assign.status().CheckOK();
  std::printf("== Scenario results (full vs compressed) ==\n%s",
              assign->ToString().c_str());
  return 0;
}
