// Example: "under the hood" — Section 4's final demo phase.
//
// "We will show the audience the part of the provenance polynomials,
// intermediate results of the algorithm and the computational sequence
// that lead to the resulting abstraction."
//
// This example prints, for the running-example provenance and the Figure 2
// tree: the input polynomials, the per-node weights |S(v)|, the full DP
// frontier table (min cost per retained-variable count at every node), the
// chosen cut, and the resulting compressed polynomials.

#include <cstdio>

#include "core/compressor.h"
#include "core/profile.h"
#include "data/example_db.h"
#include "prov/parser.h"

int main() {
  using namespace cobra;

  prov::VarPool pool;
  core::AbstractionTree tree =
      core::ParseTree(data::kFigure2TreeText, &pool).ValueOrDie();
  prov::PolySet polys =
      prov::ParsePolySet(data::kExamplePolynomialsText, &pool).ValueOrDie();

  std::printf("== input provenance ==\n%s\n", polys.ToString(pool).c_str());
  std::printf("== abstraction tree (Figure 2) ==\n%s\n",
              tree.ToString().c_str());

  core::TreeProfile profile =
      core::AnalyzeSingleTree(polys, tree, pool).ValueOrDie();
  std::printf("== analysis ==\n");
  std::printf("base monomials (no tree variable): %zu\n",
              profile.base_monomials);
  std::printf("distinct non-tree variables:       %zu\n",
              profile.base_variables);
  std::printf("distinct (poly, exp, residue) triples: %zu\n\n",
              profile.num_triples);

  for (std::size_t bound : {12u, 8u, 4u}) {
    core::CompressionRequest request;
    request.bound = bound;
    request.collect_explain = true;
    core::CompressionOutcome outcome =
        core::Compress(polys, tree, request, &pool).ValueOrDie();
    std::printf("== bound %zu ==\n%s", bound,
                outcome.report.explain_text.c_str());
    std::printf("chosen cut: %s -> size %zu, %zu variables\n",
                outcome.report.cut_description.c_str(),
                outcome.report.compressed_size,
                outcome.report.compressed_variables);
    std::printf("compressed provenance:\n%s\n",
                outcome.abstraction.compressed.ToString(pool).c_str());
  }

  std::printf(
      "Reading the frontier lines: for each node, entry k is the minimal\n"
      "number of monomials the subtree contributes if its leaves are\n"
      "grouped into exactly k meta-variables ('-' = no cut of that size\n"
      "exists). The root frontier directly answers the optimization\n"
      "problem: pick the largest k whose cost fits the bound.\n");
  return 0;
}
