// Example: COBRA over TPC-H — the second demonstration dataset of
// Section 4.
//
// Runs two analyses on the in-repo TPC-H generator:
//   * Q6 (forecast revenue change) parameterized by ship month, compressed
//     under the year->quarter->month date tree; scenario: "what if every
//     1994-Q2 shipment's discount revenue changes by +15%?"
//   * the segment-volume query parameterized by supplier nation,
//     compressed under the region geography tree; scenario: "what if the
//     ASIA supply chain gets 10% more expensive?"
//
// Usage: tpch_analysis [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "core/session.h"
#include "data/tpch.h"
#include "data/tpch_queries.h"
#include "rel/sql/planner.h"

namespace {

using namespace cobra;

void DateAnalysis(double scale_factor) {
  data::TpchConfig config;
  config.scale_factor = scale_factor;
  rel::Database db = data::GenerateTpch(config);
  data::InstrumentTpchByShipMonth(&db).CheckOK();

  data::TpchQuerySpec q6 = data::TpchQueryById("Q6").ValueOrDie();
  std::printf("== %s: %s ==\n", q6.id.c_str(), q6.description.c_str());
  prov::PolySet provenance =
      rel::sql::RunSql(db, q6.sql).ValueOrDie().Provenance(q6.provenance_agg);
  std::printf("full provenance: %zu monomials over %zu month variables\n",
              provenance.TotalMonomials(), provenance.NumDistinctVariables());

  core::Session session(db.var_pool());
  session.LoadPolynomials(std::move(provenance));
  session.SetTreeText(q6.tree_text).CheckOK();
  session.SetBound(4);  // at most one monomial per quarter
  core::CompressionReport report = session.Compress().ValueOrDie();
  std::printf("compressed to %zu monomials, cut %s\n", report.compressed_size,
              report.cut_description.c_str());

  if (session.pool().Contains("1994q2")) {
    session.SetMetaValue("1994q2", 1.15).CheckOK();
  }
  core::AssignReport assign = session.Assign().ValueOrDie();
  std::printf("scenario 1994q2 +15%%:\n%s\n", assign.ToString(3).c_str());
}

void GeographyAnalysis(double scale_factor) {
  data::TpchConfig config;
  config.scale_factor = scale_factor;
  rel::Database db = data::GenerateTpch(config);
  data::InstrumentTpchBySupplierNation(&db).CheckOK();

  std::printf(
      "== Q5v: supplier-nation volume per market segment (geography) ==\n");
  prov::PolySet provenance =
      rel::sql::RunSql(db, data::TpchSegmentVolumeQuery())
          .ValueOrDie()
          .Provenance();
  std::printf("full provenance: %zu monomials over %zu nation variables\n",
              provenance.TotalMonomials(), provenance.NumDistinctVariables());

  core::Session session(db.var_pool());
  session.LoadPolynomials(std::move(provenance));
  session.SetTreeText(data::GeographyTreeText()).CheckOK();
  session.SetBound(5 * 5);  // five segments x five regions
  core::CompressionReport report = session.Compress().ValueOrDie();
  std::printf("compressed to %zu monomials, cut %s\n", report.compressed_size,
              report.cut_description.c_str());

  if (session.pool().Contains("ASIA")) {
    session.SetMetaValue("ASIA", 1.10).CheckOK();
  }
  core::AssignReport assign = session.Assign().ValueOrDie();
  std::printf("scenario ASIA +10%%:\n%s\n", assign.ToString(5).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  double scale_factor = argc > 1 ? std::strtod(argv[1], nullptr) : 0.02;
  std::printf("TPC-H scale factor %.3f\n\n", scale_factor);
  DateAnalysis(scale_factor);
  GeographyAnalysis(scale_factor);
  return 0;
}
