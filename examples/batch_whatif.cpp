// Example: serving many hypothetical scenarios from one compression.
//
// Loads the paper's running-example provenance (P1/P2 of Example 2),
// compresses it under the Figure 2 plan tree, then takes an immutable
// CompiledSession snapshot — the artifact a production deployment shares
// across its serving threads — and answers a whole batch of named what-if
// scenarios in one AssignBatch() sweep. Each scenario compiles to a small
// override list resolved during the scan, so adding analysts costs no
// full-pool valuation copies.
//
// Usage: batch_whatif [num_scenarios]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/compiled_session.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/example_db.h"

int main(int argc, char** argv) {
  using namespace cobra;

  std::size_t extra = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 0;

  core::Session session;
  session.LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
  session.SetTreeText(data::kFigure2TreeText).CheckOK();
  session.SetBound(6);  // cut {Business, Special, p1, p2}
  core::CompressionReport report = session.Compress().ValueOrDie();
  std::printf("compressed %zu -> %zu monomials under cut %s\n\n",
              report.original_size, report.compressed_size,
              report.cut_description.c_str());

  // The immutable serving snapshot: compiled programs + frozen pool +
  // default valuations. Safe to hand to any number of threads, and
  // unaffected by whatever the authoring session does next.
  std::shared_ptr<const core::CompiledSession> snapshot =
      session.Snapshot().ValueOrDie();

  // Named scenarios, each an independent set of deltas over the defaults.
  // Add() returns an index-stable handle, so earlier handles survive later
  // Add() calls.
  core::ScenarioSet scenarios;
  auto boom = scenarios.Add("business boom");
  scenarios.Add("business slump").Set("Business", 0.8);
  scenarios.Add("special plans cheaper").Set("Special", 0.9);
  scenarios.Add("boom + standard churn")
      .Set("Business", 1.25)
      .Set("p1", 0.7);
  boom.Set("Business", 1.25);  // still valid after the Adds above
  // Synthetic load: more analysts probing the same compression.
  const std::vector<core::MetaVar>& meta = snapshot->meta_vars();
  for (std::size_t i = 0; i < extra && !meta.empty(); ++i) {
    scenarios.Add("analyst-" + std::to_string(i))
        .Set(meta[i % meta.size()].name,
             1.0 + 0.01 * static_cast<double>(i % 50));
  }

  core::BatchAssignReport batch =
      snapshot->AssignBatch(scenarios).ValueOrDie();
  std::printf("%s", batch.ToString(4, 2).c_str());
  return 0;
}
