// Example: serving many hypothetical scenarios from one compression.
//
// Loads the paper's running-example provenance (P1/P2 of Example 2),
// compresses it under the Figure 2 plan tree, then takes an immutable
// CompiledSession snapshot — the artifact a production deployment shares
// across its serving threads — and answers a whole batch of named what-if
// scenarios in one AssignBatch() sweep. Each scenario compiles to a small
// override list resolved during the scan, so adding analysts costs no
// full-pool valuation copies.
//
// With a snapshot path, the example demonstrates the *multi-node* flow: if
// the file exists it is loaded and served from directly — no tree, no
// source polynomials, no compression, exactly what a replica process does —
// otherwise the compression runs once and the snapshot is written for the
// next invocation:
//
//   batch_whatif 1000 snap.bin     # first run: compress + save snap.bin
//   batch_whatif 1000 snap.bin     # replica run: load, zero recompilation
//
// With --repeat N the batch is replayed N times against the same snapshot —
// the plan-once/execute-many serving pattern: the first call compiles a
// BatchPlan (scenario lowering, engine choice, block tables, tile
// schedule), every replay serves from the plan cache. Each batch prints the
// engine and lane count the adaptive kAuto policy chose and whether the
// plan came from the cache:
//
//   batch_whatif 1000 --repeat 5   # 1 cold plan + 4 cached replays
//
// With --bases N the same scenario set is additionally evaluated under N
// per-user base valuations in one AssignGrid() call — the 2-D grid
// workload. The base-invariant PlanCore (scenario lowering, engine, tile
// schedule) is planned once and only the cheap per-base overlay binds
// inside the loop:
//
//   batch_whatif 1000 --bases 16   # one plan, 16 bases, N x 16 grid cells
//
// With --strict a snapshot that fails to load or verify is fatal (exit 1)
// instead of falling back to in-process compression — the replica-fleet
// behavior, where silently recompiling would hide a corrupt artifact:
//
//   batch_whatif 1000 snap.bin --strict   # exit 1 if snap.bin is bad
//
// With --sweep-grid the tool streams a Cartesian grid of axis values
// through AssignStream() instead of materializing scenarios: each axis is
// `var=lo:hi:steps`, the product space is generated window by window, and
// only the top-8 scenarios by compressed-side movement are kept — the
// million-scenario sweep pattern at example scale:
//
//   batch_whatif --sweep-grid Business=0.5:1.5:50,Special=0.8:1.2:40
//
// Usage: batch_whatif [num_scenarios] [snapshot_file] [--repeat N]
//                     [--bases N] [--sweep-grid SPEC] [--strict]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "core/batch_plan.h"
#include "core/compiled_session.h"
#include "core/io.h"
#include "core/scenario.h"
#include "core/session.h"
#include "data/example_db.h"
#include "prov/valuation.h"
#include "util/csv.h"
#include "util/status.h"
#include "util/timer.h"
#include "verify/verify.h"

namespace {

using namespace cobra;

/// Compresses the running example and returns its serving snapshot; when
/// `save_path` is non-empty the snapshot is also written to disk.
std::shared_ptr<const core::CompiledSession> CompressAndSnapshot(
    const std::string& save_path) {
  core::Session session;
  session.LoadPolynomialsText(data::kExamplePolynomialsText).CheckOK();
  session.SetTreeText(data::kFigure2TreeText).CheckOK();
  session.SetBound(6);  // cut {Business, Special, p1, p2}
  core::CompressionReport report = session.Compress().ValueOrDie();
  std::printf("compressed %zu -> %zu monomials under cut %s\n",
              report.original_size, report.compressed_size,
              report.cut_description.c_str());
  std::shared_ptr<const core::CompiledSession> snapshot =
      session.Snapshot().ValueOrDie();
  if (!save_path.empty()) {
    core::SaveSnapshot(*snapshot, save_path).CheckOK();
    std::printf("snapshot saved to %s — rerun to serve from it\n",
                save_path.c_str());
  }
  return snapshot;
}

/// Parses a --sweep-grid spec "var=lo:hi:steps[,var=lo:hi:steps...]" into
/// Cartesian axes. Returns false (with a message) on malformed input.
bool ParseSweepGrid(const std::string& spec,
                    std::vector<core::ValueAxis>* axes) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string axis = spec.substr(pos, comma - pos);
    const std::size_t eq = axis.find('=');
    const std::size_t c1 = axis.find(':', eq == std::string::npos ? 0 : eq);
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : axis.find(':', c1 + 1);
    if (eq == std::string::npos || eq == 0 || c2 == std::string::npos) {
      std::fprintf(stderr, "bad --sweep-grid axis '%s' "
                   "(want var=lo:hi:steps)\n", axis.c_str());
      return false;
    }
    const double lo = std::strtod(axis.c_str() + eq + 1, nullptr);
    const double hi = std::strtod(axis.c_str() + c1 + 1, nullptr);
    const std::size_t steps = std::strtoul(axis.c_str() + c2 + 1, nullptr, 10);
    if (steps == 0) {
      std::fprintf(stderr, "bad --sweep-grid axis '%s': steps must be > 0\n",
                   axis.c_str());
      return false;
    }
    axes->push_back(core::LinSpace(axis.substr(0, eq), lo, hi, steps));
    pos = comma + 1;
  }
  return !axes->empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t extra = 0;
  std::string snapshot_path;
  std::size_t repeat = 1;
  std::size_t num_bases = 0;
  std::string sweep_grid;
  bool strict = false;
  std::vector<const char*> positional;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--strict") == 0) {
      strict = true;
      continue;
    }
    const bool is_repeat = std::strcmp(argv[a], "--repeat") == 0;
    const bool is_bases = std::strcmp(argv[a], "--bases") == 0;
    const bool is_sweep = std::strcmp(argv[a], "--sweep-grid") == 0;
    if (is_repeat || is_bases || is_sweep) {
      if (a + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [num_scenarios] [snapshot_file] [--repeat N] "
                     "[--bases N] [--sweep-grid var=lo:hi:steps[,...]] "
                     "[--strict]\n",
                     argv[0]);
        return 2;
      }
      if (is_sweep) {
        sweep_grid = argv[++a];
        continue;
      }
      const std::size_t value = std::strtoul(argv[++a], nullptr, 10);
      if (is_repeat) repeat = std::max<std::size_t>(1, value);
      if (is_bases) num_bases = value;
    } else {
      positional.push_back(argv[a]);
    }
  }
  if (!positional.empty()) extra = std::strtoul(positional[0], nullptr, 10);
  if (positional.size() > 1) snapshot_path = positional[1];

  // The immutable serving snapshot: compiled programs + frozen pool +
  // default valuations. Safe to hand to any number of threads. A replica
  // reconstructs it from the snapshot file alone; results are bit-identical
  // to the origin process.
  std::shared_ptr<const core::CompiledSession> snapshot;
  if (!snapshot_path.empty()) {
    // A snapshot file is external input: parse it, run the static verifier
    // over the decoded package, and only then admit it into the serving
    // path. FromSnapshot re-verifies (the check is mandatory there), but
    // verifying explicitly lets the tool print the finding table instead of
    // just a refusal line.
    util::Result<std::shared_ptr<const core::CompiledSession>> loaded =
        [&]() -> util::Result<std::shared_ptr<const core::CompiledSession>> {
      util::Result<std::string> bytes = util::ReadFile(snapshot_path);
      if (!bytes.ok()) return bytes.status();
      util::Result<core::SnapshotPackage> package =
          core::ParseSnapshot(*bytes, snapshot_path);
      if (!package.ok()) return package.status();
      verify::VerifyReport report = verify::VerifySnapshot(*package);
      if (!report.ok()) {
        std::printf("%s", report.ToString().c_str());
        return util::Status::InvalidArgument(
            snapshot_path + ": snapshot failed verification");
      }
      return core::CompiledSession::FromSnapshot(*package);
    }();
    if (loaded.ok()) {
      snapshot = *loaded;
      std::printf(
          "serving from snapshot %s (verified; pool %zu, %zu -> %zu "
          "monomials) — no recompilation\n",
          snapshot_path.c_str(), snapshot->pool_size(),
          snapshot->full_size(), snapshot->compressed_size());
    } else if (strict) {
      // Replica behavior: a bad snapshot is an operational failure, not an
      // excuse to recompute locally (which would mask the corruption).
      std::fprintf(stderr,
                   "snapshot fallback refused (--strict): %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    } else {
      // Missing on the first run, or stale/corrupted/rejected: fall back to
      // the origin path, which rewrites the file for the next invocation.
      // The Status says exactly why serving from the file was not possible.
      std::printf("cannot serve from snapshot: %s — compressing instead\n",
                  loaded.status().ToString().c_str());
    }
  }
  if (snapshot == nullptr) snapshot = CompressAndSnapshot(snapshot_path);
  std::printf("\n");

  // Named scenarios, each an independent set of deltas over the defaults.
  // Add() returns an index-stable handle, so earlier handles survive later
  // Add() calls.
  core::ScenarioSet scenarios;
  auto boom = scenarios.Add("business boom").ValueOrDie();
  scenarios.Add("business slump").ValueOrDie().Set("Business", 0.8);
  scenarios.Add("special plans cheaper").ValueOrDie().Set("Special", 0.9);
  scenarios.Add("boom + standard churn")
      .ValueOrDie()
      .Set("Business", 1.25)
      .Set("p1", 0.7);
  boom.Set("Business", 1.25);  // still valid after the Adds above
  // Synthetic load: more analysts probing the same compression.
  const std::vector<core::MetaVar>& meta = snapshot->meta_vars();
  for (std::size_t i = 0; i < extra && !meta.empty(); ++i) {
    scenarios.Add("analyst-" + std::to_string(i))
        .ValueOrDie()
        .Set(meta[i % meta.size()].name,
             1.0 + 0.01 * static_cast<double>(i % 50));
  }

  // Replay mode: the first call plans (compiles scenarios, resolves the
  // kAuto engine, builds block tables and the tile schedule), every further
  // call reuses the cached plan — watch the "cached" column flip.
  core::BatchAssignReport batch;
  for (std::size_t r = 0; r < repeat; ++r) {
    util::Timer timer;
    batch = snapshot->AssignBatch(scenarios).ValueOrDie();
    if (repeat > 1) {
      std::printf(
          "batch %2zu/%zu: engine=%-12s lanes=%zu cached=%-3s %8.3fms\n",
          r + 1, repeat, core::SweepName(batch.engine), batch.block_lanes,
          batch.plan_cache_hit ? "yes" : "no",
          timer.ElapsedSeconds() * 1e3);
    }
  }
  if (repeat > 1) {
    core::CompiledSession::PlanCacheStats stats =
        snapshot->plan_cache_stats();
    std::printf("plan cache: %zu entries (%zu overlays), %llu hits, "
                "%llu core hits, %llu misses\n\n",
                stats.entries, stats.overlays,
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.core_hits),
                static_cast<unsigned long long>(stats.misses));
  }
  std::printf("%s", batch.ToString(4, 2).c_str());

  // Grid mode: the same scenarios under N per-user bases. The shared
  // PlanCore is planned once (or served from the cache — the loop above
  // already warmed it); each base only binds a cheap overlay.
  if (num_bases > 0 && !meta.empty()) {
    std::vector<prov::Valuation> bases;
    bases.reserve(num_bases);
    for (std::size_t b = 0; b < num_bases; ++b) {
      prov::Valuation base(snapshot->pool_size());
      base.Set(meta[b % meta.size()].var,
               1.0 + 0.05 * static_cast<double>(b % 10 + 1));
      bases.push_back(std::move(base));
    }
    util::Timer timer;
    core::GridAssignReport grid =
        snapshot->AssignGrid(scenarios, bases).ValueOrDie();
    std::printf("\ngrid: %zu scenarios x %zu bases in %.3fms\n%s",
                grid.num_scenarios(), grid.num_bases,
                timer.ElapsedSeconds() * 1e3, grid.ToString().c_str());
  }

  // Sweep mode: stream the Cartesian product of the axes through
  // AssignStream instead of materializing it — the generator is the
  // scenario set, one window at a time, and the top-k query lets the
  // kernel skip the full-side program for everything that cannot rank.
  if (!sweep_grid.empty()) {
    std::vector<core::ValueAxis> axes;
    if (!ParseSweepGrid(sweep_grid, &axes)) return 2;
    util::Result<std::shared_ptr<const core::CartesianSource>> source =
        core::CartesianSource::Create(std::move(axes), "sweep");
    if (!source.ok()) {
      std::fprintf(stderr, "--sweep-grid: %s\n",
                   source.status().ToString().c_str());
      return 2;
    }
    core::StreamOptions stream;
    stream.query.kind = core::StreamQuery::Kind::kTopK;
    stream.query.k = 8;
    util::Timer timer;
    util::Result<core::SweepSummary> summary =
        snapshot->AssignStream(**source, stream);
    if (!summary.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n",
                   summary.status().ToString().c_str());
      return 1;
    }
    std::printf("\nsweep: %llu scenarios in %.3fms\n%s",
                static_cast<unsigned long long>((*source)->size()),
                timer.ElapsedSeconds() * 1e3,
                summary->ToString().c_str());
  }
  return 0;
}
