// Example: end-to-end hypothetical reasoning on the telephony workload.
//
// Recreates the analyst story from Section 1/4 of the paper at a scale
// configurable from the command line (default: 50k customers, 300 zips):
//
//   1. generate + instrument the database,
//   2. run the revenue query once, with provenance,
//   3. compress the provenance under the Figure 2 plan tree,
//   4. evaluate the paper's two hypothetical scenarios
//        (a) "ppm of all plans decreased by 20% on March"  -> m3 = 0.8
//        (b) "ppm of business plans increased by 10%"      -> Business = 1.1
//      on the compressed provenance, comparing against the full provenance
//      and reporting the assignment speedup.
//
// Usage: telephony_whatif [num_customers] [num_zips] [bound]

#include <cstdio>
#include <cstdlib>

#include "core/session.h"
#include "data/telephony.h"
#include "rel/sql/planner.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace cobra;

  data::TelephonyConfig config;
  config.num_customers = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  config.num_zips = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300;
  config.num_months = 12;

  std::printf("generating telephony database: %zu customers, %zu zips...\n",
              config.num_customers, config.num_zips);
  rel::Database db = data::GenerateTelephony(config);
  data::InstrumentTelephony(&db).CheckOK();

  util::Timer query_timer;
  rel::sql::QueryResult result =
      rel::sql::RunSql(db, data::TelephonyRevenueQuery()).ValueOrDie();
  prov::PolySet provenance = result.Provenance();
  std::printf("provenance query took %.2fs; %zu polynomials, %zu monomials\n",
              query_timer.ElapsedSeconds(), provenance.size(),
              provenance.TotalMonomials());

  std::size_t full_size = provenance.TotalMonomials();
  std::size_t bound = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                               : full_size * 7 / 11;  // the paper's S2 regime

  core::Session session(db.var_pool());
  session.LoadPolynomials(std::move(provenance));
  session.SetTreeText(data::TelephonyPlanTreeText()).CheckOK();
  session.SetBound(bound);
  core::CompressionReport report = session.Compress().ValueOrDie();
  std::printf("\n%s\n", report.ToString().c_str());

  std::printf("meta-variables offered to the analyst:\n");
  for (const core::MetaVar& mv : session.meta_vars()) {
    std::printf("  %-10s (replaces %zu plan variable%s)\n", mv.name.c_str(),
                mv.leaves.size(), mv.leaves.size() == 1 ? "" : "s");
  }

  // Scenario (a): March prices -20%.
  session.SetMetaValue("m3", 0.8).CheckOK();
  core::AssignReport march = session.Assign().ValueOrDie();
  std::printf("\nscenario (a): March ppm -20%% (m3 = 0.8)\n%s",
              march.ToString(5).c_str());

  // Scenario (b): business plans +10% — via the Business meta-variable if
  // it survived compression, else via its surviving pieces.
  session.SetMetaValue("m3", 1.0).CheckOK();
  bool set_any = false;
  for (const char* name : {"Business", "SB", "b1", "b2", "e"}) {
    if (session.pool().Contains(name)) {
      if (session.SetMetaValue(name, 1.1).ok()) set_any = true;
    }
  }
  if (!set_any) {
    std::printf("no business meta-variable available under this cut\n");
    return 1;
  }
  core::AssignReport business = session.Assign().ValueOrDie();
  std::printf("\nscenario (b): business plans ppm +10%%\n%s",
              business.ToString(5).c_str());

  std::printf(
      "\nBoth scenarios are uniform within the abstraction groups, so the\n"
      "compressed answers equal the full-provenance answers exactly, at a\n"
      "fraction of the assignment cost.\n");
  return 0;
}
