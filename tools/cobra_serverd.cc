// cobra_serverd — the fault-tolerant COBRA what-if serving daemon.
//
// Usage:
//   cobra_serverd --dir <snapshot-dir> [--port N] [--workers N]
//                 [--queue N] [--poll-ms N] [--default-deadline-ms N]
//                 [--max-deadline-ms N] [--no-quarantine]
//
// The daemon watches <snapshot-dir> for versioned binary snapshots
// (`<version>.snap`, lexicographically ordered; see README "Running
// cobra_serverd") and answers wire-protocol what-if requests (serve/wire.h)
// against the newest snapshot that survived the full trust pipeline:
// parse (format/version/checksum) -> static verifier -> serving-session
// rebuild. A snapshot that fails verification is quarantined (renamed
// `<name>.rejected`) with its VerifyReport logged, and the daemon keeps
// serving the previous version; a torn or still-copying file is retried
// with capped exponential backoff. Swaps are atomic: requests admitted
// before a swap finish on the session they started with.
//
// Admission is bounded: a full queue sheds (kUnavailable + retry-after)
// instead of buffering, and every request runs under a deadline. SIGTERM
// and SIGINT drain gracefully — accepted requests complete, then the
// process exits 0.
//
// On startup the daemon prints exactly one machine-readable line to stdout:
//   READY port=<port> snapshot=<name-or-"-">
// (scripts wait for it), then logs to stderr.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "serve/server.h"
#include "serve/snapshot_watcher.h"
#include "util/status.h"

namespace {

using cobra::serve::CobraServer;
using cobra::serve::ServerOptions;
using cobra::serve::SnapshotWatcher;

// Self-pipe written by the signal handler; main blocks on it.
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  const char byte = 's';
  [[maybe_unused]] ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --dir <snapshot-dir> [--port N] [--workers N] [--queue N]\n"
      "          [--poll-ms N] [--default-deadline-ms N] "
      "[--max-deadline-ms N]\n"
      "          [--no-quarantine]\n"
      "Serves what-if requests against the newest verified snapshot in the\n"
      "directory; hot-swaps on new versions, quarantines corrupt ones, and\n"
      "drains on SIGTERM/SIGINT (exit 0).\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  ServerOptions server_options;
  SnapshotWatcher::Options watcher_options;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next_int = [&](int* out) {
      if (a + 1 >= argc) return false;
      *out = std::atoi(argv[++a]);
      return true;
    };
    if (arg == "--dir") {
      if (a + 1 >= argc) return Usage(argv[0]);
      dir = argv[++a];
    } else if (arg == "--port") {
      if (!next_int(&server_options.port)) return Usage(argv[0]);
    } else if (arg == "--workers") {
      if (!next_int(&server_options.num_workers)) return Usage(argv[0]);
    } else if (arg == "--queue") {
      if (!next_int(&server_options.queue_capacity)) return Usage(argv[0]);
    } else if (arg == "--poll-ms") {
      if (!next_int(&watcher_options.poll_interval_ms)) return Usage(argv[0]);
    } else if (arg == "--default-deadline-ms") {
      if (!next_int(&server_options.default_deadline_ms)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--max-deadline-ms") {
      if (!next_int(&server_options.max_deadline_ms)) return Usage(argv[0]);
    } else if (arg == "--no-quarantine") {
      watcher_options.quarantine = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (dir.empty()) return Usage(argv[0]);
  watcher_options.dir = dir;

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe() failed: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  CobraServer server(server_options);
  auto log = [](const std::string& line) {
    std::fprintf(stderr, "%s\n", line.c_str());
    std::fflush(stderr);
  };
  server.set_log(log);

  SnapshotWatcher watcher(
      watcher_options,
      [&server](std::shared_ptr<const cobra::core::CompiledSession> session,
                const std::string& name) {
        server.Swap(std::move(session), name);
      },
      log);

  cobra::util::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start: %s\n", started.ToString().c_str());
    return 1;
  }
  // Synchronous initial load: serve something from the first request on
  // when the directory already holds a good snapshot. Failures are logged
  // and non-fatal — the watcher keeps trying, and requests answer
  // kFailedPrecondition until a snapshot verifies.
  watcher.PollOnce();
  watcher.Start();

  const std::string name = server.snapshot_name();
  std::printf("READY port=%d snapshot=%s\n", server.port(),
              name.empty() ? "-" : name.c_str());
  std::fflush(stdout);

  // Block until a signal arrives.
  for (;;) {
    pollfd fd = {g_signal_pipe[0], POLLIN, 0};
    const int ready = ::poll(&fd, 1, -1);
    if (ready > 0 || (ready < 0 && errno != EINTR)) break;
  }

  log("serverd: signal received, draining");
  watcher.Stop();
  server.Stop();
  return 0;
}
