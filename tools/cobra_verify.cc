// cobra_verify — offline fleet audit of COBRA serving snapshots.
//
// Usage:
//   cobra_verify <snapshot-file-or-directory>...
//
// Each file argument is audited as one binary snapshot artifact; a
// directory argument audits every regular file directly inside it (one
// fleet snapshot directory, no recursion). Per artifact the tool runs the
// full load pipeline short of serving: read -> ParseSnapshot (format,
// version, checksum) -> VerifySnapshot (static content verification) ->
// CompiledSession::FromSnapshot (the mandatory serving-side gate), and
// prints the VerifyReport findings for anything inconsistent.
//
// Exit codes (the fleet-automation contract, see README "Verifying
// artifacts before serving"):
//   0  every artifact is clean (warnings alone do not fail the audit)
//   1  at least one artifact has error findings or fails to parse/load
//   2  usage error, or a path that cannot be read/listed at all
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "core/compiled_session.h"
#include "core/io.h"
#include "util/csv.h"
#include "verify/verify.h"

namespace {

namespace fs = std::filesystem;
using cobra::core::CompiledSession;
using cobra::core::ParseSnapshot;
using cobra::core::SnapshotPackage;
using cobra::util::Result;
using cobra::verify::VerifyReport;
using cobra::verify::VerifySnapshot;

/// Audits one snapshot file. Returns true when the artifact is servable.
bool AuditFile(const std::string& path) {
  std::printf("== %s\n", path.c_str());
  Result<std::string> data = cobra::util::ReadFile(path);
  if (!data.ok()) {
    std::printf("UNREADABLE: %s\n\n", data.status().ToString().c_str());
    return false;
  }
  Result<SnapshotPackage> snapshot = ParseSnapshot(*data, path);
  if (!snapshot.ok()) {
    std::printf("CORRUPT: %s\n\n", snapshot.status().ToString().c_str());
    return false;
  }
  const VerifyReport report = VerifySnapshot(*snapshot);
  std::printf("%s", report.ToString().c_str());
  if (!report.ok()) {
    std::printf("REJECTED\n\n");
    return false;
  }
  // The same gate a replica runs: FromSnapshot re-verifies and builds the
  // serving session, so a pass here means the fleet can load this file.
  Result<std::shared_ptr<const CompiledSession>> session =
      CompiledSession::FromSnapshot(*snapshot);
  if (!session.ok()) {
    std::printf("REJECTED: %s\n\n", session.status().ToString().c_str());
    return false;
  }
  std::printf("OK: %zu groups, %zu pool variables, %zu -> %zu monomials\n\n",
              (*session)->labels().size(), (*session)->pool_size(),
              (*session)->full_size(), (*session)->compressed_size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <snapshot-file-or-directory>...\n"
                 "Audits COBRA binary snapshots (exit 0 clean, 1 findings, "
                 "2 usage/unreadable).\n",
                 argv[0]);
    return 2;
  }

  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path path(argv[i]);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      bool any = false;
      for (const fs::directory_entry& entry :
           fs::directory_iterator(path, ec)) {
        if (entry.is_regular_file()) {
          files.push_back(entry.path().string());
          any = true;
        }
      }
      if (ec) {
        std::fprintf(stderr, "cannot list directory %s: %s\n", argv[i],
                     ec.message().c_str());
        return 2;
      }
      if (!any) {
        std::fprintf(stderr, "directory %s holds no regular files\n",
                     argv[i]);
        return 2;
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path.string());
    } else {
      std::fprintf(stderr, "no such file or directory: %s\n", argv[i]);
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t failed = 0;
  for (const std::string& file : files) {
    if (!AuditFile(file)) ++failed;
  }
  std::printf("%zu artifact(s) audited, %zu rejected\n", files.size(),
              failed);
  return failed == 0 ? 0 : 1;
}
