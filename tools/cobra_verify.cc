// cobra_verify — offline fleet audit of COBRA serving snapshots.
//
// Usage:
//   cobra_verify [--quarantine] <snapshot-file-or-directory>...
//
// Each file argument is audited as one binary snapshot artifact; a
// directory argument audits every regular file directly inside it (one
// fleet snapshot directory, no recursion; files already quarantined as
// `*.rejected` are skipped). Per artifact the tool runs the full load
// pipeline short of serving: read -> ParseSnapshot (format, version,
// checksum) -> VerifySnapshot (static content verification) ->
// CompiledSession::FromSnapshot (the mandatory serving-side gate), and
// prints the VerifyReport findings for anything inconsistent.
//
// With --quarantine every *permanently* bad artifact (corrupt or rejected
// by the verifier — not merely unreadable) is renamed to `<name>.rejected`,
// the same convention `cobra_serverd`'s snapshot watcher applies, so the
// serving fleet stops considering it.
//
// Exit codes (the fleet-automation contract, see README "Verifying
// artifacts before serving"):
//   0  every artifact is clean (warnings alone do not fail the audit)
//   1  at least one artifact has error findings or fails to parse/load
//   2  usage error, or a path that cannot be read/listed at all
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "core/compiled_session.h"
#include "core/io.h"
#include "serve/snapshot_watcher.h"
#include "util/csv.h"
#include "verify/verify.h"

namespace {

namespace fs = std::filesystem;
using cobra::core::CompiledSession;
using cobra::core::ParseSnapshot;
using cobra::core::SnapshotPackage;
using cobra::serve::QuarantineArtifact;
using cobra::util::Result;
using cobra::util::Status;
using cobra::verify::VerifyReport;
using cobra::verify::VerifySnapshot;

bool IsRejectedName(const std::string& path) {
  const std::size_t n = std::strlen(cobra::serve::kRejectedSuffix);
  return path.size() >= n &&
         path.compare(path.size() - n, n, cobra::serve::kRejectedSuffix) == 0;
}

enum class Verdict {
  kClean,       ///< Servable.
  kUnreadable,  ///< Could not read the file (do NOT quarantine: transient).
  kRejected,    ///< Permanently bad: corrupt or verifier-rejected.
};

/// Audits one snapshot file.
Verdict AuditFile(const std::string& path) {
  std::printf("== %s\n", path.c_str());
  Result<std::string> data = cobra::util::ReadFile(path);
  if (!data.ok()) {
    std::printf("UNREADABLE: %s\n\n", data.status().ToString().c_str());
    return Verdict::kUnreadable;
  }
  Result<SnapshotPackage> snapshot = ParseSnapshot(*data, path);
  if (!snapshot.ok()) {
    std::printf("CORRUPT: %s\n\n", snapshot.status().ToString().c_str());
    // A torn in-progress write classifies Unavailable (core/io.h): leave it
    // alone, the publisher may still complete it. Only DataLoss condemns.
    return cobra::util::IsRetryable(snapshot.status()) ? Verdict::kUnreadable
                                                       : Verdict::kRejected;
  }
  const VerifyReport report = VerifySnapshot(*snapshot);
  std::printf("%s", report.ToString().c_str());
  if (!report.ok()) {
    std::printf("REJECTED\n\n");
    return Verdict::kRejected;
  }
  // The same gate a replica runs: FromSnapshot re-verifies and builds the
  // serving session, so a pass here means the fleet can load this file.
  Result<std::shared_ptr<const CompiledSession>> session =
      CompiledSession::FromSnapshot(*snapshot);
  if (!session.ok()) {
    std::printf("REJECTED: %s\n\n", session.status().ToString().c_str());
    return Verdict::kRejected;
  }
  std::printf("OK: %zu groups, %zu pool variables, %zu -> %zu monomials\n\n",
              (*session)->labels().size(), (*session)->pool_size(),
              (*session)->full_size(), (*session)->compressed_size());
  return Verdict::kClean;
}

int Usage(const char* argv0, bool requested) {
  std::fprintf(
      requested ? stdout : stderr,
      "usage: %s [--quarantine] <snapshot-file-or-directory>...\n"
      "\n"
      "Audits COBRA binary snapshots through the full serving trust\n"
      "pipeline (parse -> checksum -> static verifier -> session rebuild).\n"
      "Directory arguments audit every regular file directly inside\n"
      "(*.rejected files are skipped).\n"
      "\n"
      "  --quarantine  rename permanently-bad artifacts to <name>.rejected\n"
      "                (the cobra_serverd watcher convention); transient\n"
      "                failures (unreadable/torn files) are never renamed\n"
      "  --help        print this help and exit 0\n"
      "\n"
      "exit codes:\n"
      "  0  every artifact is clean (warnings alone do not fail)\n"
      "  1  at least one artifact was rejected or unreadable\n"
      "  2  usage error, or a path that cannot be read/listed at all\n",
      argv0);
  return requested ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool quarantine = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quarantine") == 0) {
      quarantine = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return Usage(argv[0], /*requested=*/true);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (args.empty()) return Usage(argv[0], /*requested=*/false);

  std::vector<std::string> files;
  for (const std::string& arg : args) {
    const fs::path path(arg);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      bool any = false;
      for (const fs::directory_entry& entry :
           fs::directory_iterator(path, ec)) {
        if (entry.is_regular_file() &&
            !IsRejectedName(entry.path().string())) {
          files.push_back(entry.path().string());
          any = true;
        }
      }
      if (ec) {
        std::fprintf(stderr, "cannot list directory %s: %s\n", arg.c_str(),
                     ec.message().c_str());
        return 2;
      }
      if (!any) {
        std::fprintf(stderr, "directory %s holds no regular files\n",
                     arg.c_str());
        return 2;
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path.string());
    } else {
      std::fprintf(stderr, "no such file or directory: %s\n", arg.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t failed = 0;
  std::size_t quarantined = 0;
  for (const std::string& file : files) {
    const Verdict verdict = AuditFile(file);
    if (verdict == Verdict::kClean) continue;
    ++failed;
    if (verdict == Verdict::kRejected && quarantine) {
      const Status renamed = QuarantineArtifact(file);
      if (renamed.ok()) {
        std::printf("quarantined: %s -> %s%s\n", file.c_str(), file.c_str(),
                    cobra::serve::kRejectedSuffix);
        ++quarantined;
      } else {
        std::fprintf(stderr, "quarantine failed for %s: %s\n", file.c_str(),
                     renamed.ToString().c_str());
      }
    }
  }
  std::printf("%zu artifact(s) audited, %zu rejected", files.size(), failed);
  if (quarantine) std::printf(", %zu quarantined", quarantined);
  std::printf("\n");
  return failed == 0 ? 0 : 1;
}
