// cobra_client — command-line client for cobra_serverd (serve/wire.h).
//
// Usage:
//   cobra_client --port N [--host H] [--deadline-ms N] ping
//   cobra_client --port N [--host H] [--deadline-ms N] stats
//   cobra_client --port N [--host H] [--deadline-ms N] batch
//       <name:var=value[,var=value...]>...
//
// `batch` sends one AssignBatch request whose scenarios are the positional
// specs — e.g. `slump:Business=0.8 boom:Business=1.25,Special=0.9` — and
// prints the served snapshot version plus the full/compressed value matrix.
// Exit codes: 0 on an OK response, 1 on any error response (the wire code
// and message are printed), 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "serve/wire.h"
#include "util/status.h"

namespace {

using cobra::core::ScenarioSet;
using cobra::serve::Client;
using cobra::serve::MsgType;
using cobra::serve::WireCode;
using cobra::serve::WireCodeName;
using cobra::serve::WireRequest;
using cobra::serve::WireResponse;
using cobra::util::Result;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host H] [--deadline-ms N] "
               "ping|stats|batch <name:var=value[,var=value...]>...\n",
               argv0);
  return 2;
}

/// Parses "name:var=value,var=value" into one scenario of `scenarios`.
bool ParseScenarioSpec(const std::string& spec, ScenarioSet* scenarios) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  Result<ScenarioSet::Handle> added =
      scenarios->Add(spec.substr(0, colon));
  if (!added.ok()) return false;
  ScenarioSet::Handle scenario = *added;
  std::size_t pos = colon + 1;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string delta = spec.substr(pos, comma - pos);
    const std::size_t eq = delta.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    char* end = nullptr;
    const double value = std::strtod(delta.c_str() + eq + 1, &end);
    if (end == delta.c_str() + eq + 1) return false;
    scenario.Set(delta.substr(0, eq), value);
    pos = comma + 1;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int deadline_ms = 0;
  std::string command;
  std::vector<std::string> specs;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--port" && a + 1 < argc) {
      port = std::atoi(argv[++a]);
    } else if (arg == "--host" && a + 1 < argc) {
      host = argv[++a];
    } else if (arg == "--deadline-ms" && a + 1 < argc) {
      deadline_ms = std::atoi(argv[++a]);
    } else if (command.empty()) {
      command = arg;
    } else {
      specs.push_back(arg);
    }
  }
  if (port <= 0 || command.empty()) return Usage(argv[0]);

  WireRequest request;
  request.request_id = 1;
  request.deadline_ms = static_cast<std::uint32_t>(deadline_ms);
  if (command == "ping") {
    request.type = MsgType::kPing;
  } else if (command == "stats") {
    request.type = MsgType::kStats;
  } else if (command == "batch") {
    request.type = MsgType::kAssignBatch;
    if (specs.empty()) return Usage(argv[0]);
    for (const std::string& spec : specs) {
      if (!ParseScenarioSpec(spec, &request.scenarios)) {
        std::fprintf(stderr, "bad scenario spec: %s\n", spec.c_str());
        return 2;
      }
    }
  } else {
    return Usage(argv[0]);
  }

  Result<Client> client = Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  Result<WireResponse> response = client->Call(request);
  if (!response.ok()) {
    std::fprintf(stderr, "call failed: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  if (response->code != WireCode::kOk) {
    std::fprintf(stderr, "%s: %s", WireCodeName(response->code),
                 response->message.c_str());
    if (response->retry_after_ms > 0) {
      std::fprintf(stderr, " (retry after %ums)", response->retry_after_ms);
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  switch (request.type) {
    case MsgType::kPing:
      std::printf("ok version=%llu snapshot=%s\n",
                  static_cast<unsigned long long>(response->snapshot_version),
                  response->message.empty() ? "-"
                                            : response->message.c_str());
      break;
    case MsgType::kStats:
      std::printf("%s\n", response->stats_text.c_str());
      break;
    case MsgType::kAssignBatch: {
      std::printf("ok version=%llu scenarios=%zu groups=%zu\n",
                  static_cast<unsigned long long>(response->snapshot_version),
                  response->num_scenarios(), response->num_groups());
      for (std::size_t s = 0; s < response->num_scenarios(); ++s) {
        std::printf("%s:\n", response->scenario_names[s].c_str());
        for (std::size_t g = 0; g < response->num_groups(); ++g) {
          std::printf("  %-24s full=%.17g compressed=%.17g\n",
                      response->labels[g].c_str(), response->full_value(s, g),
                      response->compressed_value(s, g));
        }
      }
      break;
    }
  }
  return 0;
}
